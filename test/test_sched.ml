(* taqp_sched: the multi-query deadline scheduler.

   The load-bearing property is seed-compatibility: one job pushed
   through the scheduler — under ANY policy — must produce a report
   bit-identical to a direct Taqp.count_within with the same seed and
   quota, because the scheduler reproduces count_within's rng-stream
   discipline on a jitter-free device and Executor.run is itself the
   start/step loop. Everything else (policies, admission, preemption)
   is tested on top of that anchor. *)

module Taqp = Taqp_core.Taqp
module Report = Taqp_core.Report
module Config = Taqp_core.Config
module Io_stats = Taqp_storage.Io_stats
module Cost_params = Taqp_storage.Cost_params
module Confidence = Taqp_stats.Confidence
module Paper_setup = Taqp_workload.Paper_setup
module Fault_plan = Taqp_fault.Fault_plan
module Injector = Taqp_fault.Injector
module Json = Taqp_obs.Json
module Job = Taqp_sched.Job
module Policy = Taqp_sched.Policy
module Admission = Taqp_sched.Admission
module Scheduler = Taqp_sched.Scheduler

let checkb = Fixtures.checkb
let checki = Fixtures.checki
let checks = Alcotest.check Alcotest.string

let report_fingerprint (r : Report.t) =
  Fmt.str "%a|%.17g|%.17g|%.17g|%.17g|%d|%a" Report.pp r r.Report.estimate
    r.Report.variance r.Report.confidence.Confidence.half_width
    r.Report.elapsed
    (List.length r.Report.trace)
    Io_stats.pp r.Report.io

let selection =
  lazy (Paper_setup.selection ~spec:(Fixtures.spec ~n_tuples:500 ()) ~seed:5 ())

let join = lazy (Paper_setup.join ~spec:(Fixtures.spec ()) ~seed:6 ())

let intersection =
  lazy (Paper_setup.intersection ~spec:(Fixtures.spec ()) ~overlap:120 ~seed:7 ())

let workloads =
  lazy
    [
      ("selection", Lazy.force selection, 1.5);
      ("join", Lazy.force join, 2.0);
      ("intersection", Lazy.force intersection, 2.0);
    ]

let no_jitter = Cost_params.no_jitter Cost_params.default

(* ------------------------------------------------------------------ *)
(* Single job through the scheduler == direct count_within             *)

let test_solo_job_bit_identity () =
  List.iter
    (fun (name, (wl : Paper_setup.t), quota) ->
      let direct =
        Taqp.count_within ~params:no_jitter ~seed:3 wl.Paper_setup.catalog
          ~quota wl.Paper_setup.query
      in
      List.iter
        (fun policy ->
          let job =
            Job.make ~seed:3 ~id:0 ~catalog:wl.Paper_setup.catalog
              ~arrival:0.0 ~deadline:quota wl.Paper_setup.query
          in
          let result = Scheduler.run ~policy [ job ] in
          match result.Scheduler.reports with
          | [ r ] ->
              let report =
                match Scheduler.completed_report r with
                | Some rep -> rep
                | None -> Alcotest.fail "job did not complete"
              in
              checks
                (Fmt.str "%s under %s == count_within" name
                   (Policy.name policy))
                (report_fingerprint direct)
                (report_fingerprint report)
          | rs -> Alcotest.failf "expected 1 report, got %d" (List.length rs))
        Policy.all)
    (Lazy.force workloads)

(* Report times are relative to the handle's start, so a late arrival
   on an idle device changes nothing. *)
let test_solo_job_nonzero_arrival () =
  let wl = Lazy.force selection in
  let direct =
    Taqp.count_within ~params:no_jitter ~seed:9 wl.Paper_setup.catalog
      ~quota:1.5 wl.Paper_setup.query
  in
  let job =
    Job.make ~seed:9 ~id:0 ~catalog:wl.Paper_setup.catalog ~arrival:42.0
      ~deadline:43.5 wl.Paper_setup.query
  in
  let result = Scheduler.run [ job ] in
  match result.Scheduler.reports with
  | [ r ] ->
      let rep = Option.get (Scheduler.completed_report r) in
      (* The handle starts at clock 42, so elapsed is a subtraction of
         large absolute instants — identical to float ulps, not bits.
         Everything else (sampling, estimate, CI, io) is exact. *)
      let no_elapsed (x : Report.t) =
        Fmt.str "%a|%.17g|%.17g|%.17g|%d|%a" Report.pp x x.Report.estimate
          x.Report.variance x.Report.confidence.Confidence.half_width
          (List.length x.Report.trace)
          Io_stats.pp x.Report.io
      in
      checks "same report at arrival 42" (no_elapsed direct) (no_elapsed rep);
      Fixtures.checkf_eps 1e-9 "same elapsed" direct.Report.elapsed
        rep.Report.elapsed;
      Fixtures.checkf "started at arrival" 42.0
        (Option.get r.Scheduler.started_at)
  | _ -> Alcotest.fail "expected 1 report"

(* ------------------------------------------------------------------ *)
(* Determinism: same jobs + seeds -> identical runs                    *)

let contended_jobs ?(n = 9) () =
  List.init n (fun i ->
      let _, (wl : Paper_setup.t), _ =
        List.nth (Lazy.force workloads) (i mod 3)
      in
      let arrival = 0.3 *. float_of_int i in
      let slack = [| 1.2; 3.0; 8.0 |].(i mod 3) in
      Job.make ~seed:(100 + i) ~priority:(1 + (i mod 2))
        ~label:(Fmt.str "c%d" i) ~id:i ~catalog:wl.Paper_setup.catalog
        ~arrival ~deadline:(arrival +. slack) wl.Paper_setup.query)

let run_fingerprints ~policy ?admission jobs =
  let result = Scheduler.run ~policy ?admission jobs in
  let per_job =
    List.map
      (fun r ->
        Fmt.str "%s:%s:%b:%b:%s" r.Scheduler.job.Job.label
          (Scheduler.outcome_name r) r.Scheduler.admitted r.Scheduler.missed
          (match Scheduler.completed_report r with
          | Some rep -> report_fingerprint rep
          | None -> "-"))
      result.Scheduler.reports
  in
  (result, String.concat "\n" per_job)

let test_two_runs_identical () =
  List.iter
    (fun policy ->
      let jobs = contended_jobs () in
      let r1, f1 = run_fingerprints ~policy jobs in
      let r2, f2 = run_fingerprints ~policy jobs in
      checks (Fmt.str "reports identical under %s" (Policy.name policy)) f1 f2;
      checks "summaries identical"
        (Json.to_string (Scheduler.summary_json r1.Scheduler.summary))
        (Json.to_string (Scheduler.summary_json r2.Scheduler.summary)))
    Policy.all

let test_two_runs_identical_with_admission () =
  let jobs = contended_jobs () in
  let adm = Admission.default in
  let _, f1 = run_fingerprints ~policy:Policy.Edf ~admission:adm jobs in
  let _, f2 = run_fingerprints ~policy:Policy.Edf ~admission:adm jobs in
  checks "admission runs identical" f1 f2

(* ------------------------------------------------------------------ *)
(* Admission edges                                                     *)

let eval_admission ?(t = Admission.default) ?(now = 0.0) ?(backlog = 0.0)
    ?(queue_len = 0) job =
  let _, device = Fixtures.quiet_device () in
  Admission.evaluate t ~device ~now ~backlog ~queue_len job

let mk_job ?min_confidence ~deadline () =
  let wl = Lazy.force selection in
  Job.make ?min_confidence ~seed:1 ~id:0 ~catalog:wl.Paper_setup.catalog
    ~arrival:0.0 ~deadline wl.Paper_setup.query

let test_admission_zero_slack () =
  (* Evaluated after its deadline already passed: rejected before it
     costs the device anything. *)
  match eval_admission ~now:5.0 (mk_job ~deadline:4.0 ()) with
  | Admission.Reject Admission.Zero_slack -> ()
  | d -> Alcotest.failf "expected zero-slack, got %s" (Admission.decision_name d)

let test_admission_below_min_stage_cost () =
  (* A deadline tighter than planning + one minimum-fraction stage. *)
  match eval_admission (mk_job ~deadline:1e-4 ()) with
  | Admission.Reject (Admission.Infeasible { needed; available }) ->
      checkb "needed > available" true (needed > available)
  | d -> Alcotest.failf "expected infeasible, got %s" (Admission.decision_name d)

let test_admission_backlog_counts () =
  (* The same deadline is feasible alone but not behind queued work. *)
  let job = mk_job ~deadline:2.0 () in
  (match eval_admission job with
  | Admission.Accept _ -> ()
  | d -> Alcotest.failf "expected accept, got %s" (Admission.decision_name d));
  match eval_admission ~backlog:1.999 job with
  | Admission.Reject (Admission.Infeasible _) -> ()
  | d -> Alcotest.failf "expected infeasible, got %s" (Admission.decision_name d)

let test_admission_queue_full () =
  let t = Admission.make ~max_queue:2 () in
  match eval_admission ~t ~queue_len:2 (mk_job ~deadline:10.0 ()) with
  | Admission.Reject (Admission.Queue_full { limit }) -> checki "limit" 2 limit
  | d -> Alcotest.failf "expected queue-full, got %s" (Admission.decision_name d)

let test_admission_degrade () =
  (* An extreme confidence ask clamps to a full-table stage, so any
     deadline strictly between the minimum viable price and the full
     price must degrade: admitted, but only with the quota that
     fits. The deadline is derived from the pricing API itself so the
     edge holds whatever the cost model says. *)
  let module Staged = Taqp_core.Staged in
  let module Executor = Taqp_core.Executor in
  let wl = Lazy.force selection in
  (* Admission's proportion math needs a selectivity prior below 1:
     with the default prior (1.0) a COUNT proportion is already exact
     and any confidence ask prices to the minimum stage. *)
  let query = Taqp.parse "count(select[sel < 25](r))" in
  let config =
    {
      Config.default with
      Config.initial_selectivities =
        { Config.no_initial_overrides with Config.select = Some 0.05 };
    }
  in
  let mk_job ?min_confidence ~deadline () =
    Job.make ?min_confidence ~config ~seed:1 ~id:0
      ~catalog:wl.Paper_setup.catalog ~arrival:0.0 ~deadline query
  in
  let probe = mk_job ~deadline:1.0 () in
  let _, device = Fixtures.quiet_device () in
  let staged = Admission.compile_for_pricing ~job:probe () in
  let config = probe.Job.config in
  let min_c = Admission.price_min_stage ~device staged ~config in
  let full =
    min_c
    -. Staged.predicted_cost staged ~f:Executor.min_fraction ~mode:Staged.Plain
    +. Staged.predicted_cost staged ~f:1.0 ~mode:Staged.Plain
  in
  checkb "full stage prices above the minimum" true (full > min_c);
  match
    eval_admission
      (mk_job ~min_confidence:0.001 ~deadline:((min_c +. full) /. 2.0) ())
  with
  | Admission.Degrade { quota; wanted } ->
      checkb "quota below ask" true (quota < wanted);
      checkb "quota positive" true (quota > 0.0)
  | d -> Alcotest.failf "expected degrade, got %s" (Admission.decision_name d)

let test_admission_accept_grants_full_slack () =
  match eval_admission (mk_job ~deadline:50.0 ()) with
  | Admission.Accept { quota } -> Fixtures.checkf "quota = slack" 50.0 quota
  | d -> Alcotest.failf "expected accept, got %s" (Admission.decision_name d)

(* ------------------------------------------------------------------ *)
(* Scheduler-level outcomes                                            *)

let test_rejected_job_is_not_missed () =
  let wl = Lazy.force selection in
  let hopeless =
    Job.make ~seed:2 ~id:0 ~catalog:wl.Paper_setup.catalog ~arrival:0.0
      ~deadline:1e-4 wl.Paper_setup.query
  in
  let result = Scheduler.run ~admission:Admission.default [ hopeless ] in
  match result.Scheduler.reports with
  | [ r ] ->
      checkb "not admitted" false r.Scheduler.admitted;
      checkb "not missed" false r.Scheduler.missed;
      checki "summary rejected" 1 result.Scheduler.summary.Scheduler.rejected;
      checki "summary missed" 0 result.Scheduler.summary.Scheduler.missed
  | _ -> Alcotest.fail "expected 1 report"

let test_unadmitted_queue_rot_expires () =
  (* Without admission, FIFO runs a long job first; the short-slack
     job behind it expires in queue — counted missed, and the queue
     still drains. *)
  let wl_long = Lazy.force join and wl_short = Lazy.force selection in
  let jobs =
    [
      Job.make ~seed:1 ~label:"long" ~id:0
        ~catalog:wl_long.Paper_setup.catalog ~arrival:0.0 ~deadline:20.0
        wl_long.Paper_setup.query;
      Job.make ~seed:2 ~label:"short" ~id:1
        ~catalog:wl_short.Paper_setup.catalog ~arrival:0.1 ~deadline:0.2
        wl_short.Paper_setup.query;
    ]
  in
  let result = Scheduler.run ~policy:Policy.Fifo jobs in
  let by_label l =
    List.find (fun r -> r.Scheduler.job.Job.label = l) result.Scheduler.reports
  in
  (match (by_label "short").Scheduler.outcome with
  | Scheduler.Expired -> ()
  | _ -> Alcotest.fail "short job should expire in queue");
  checkb "short missed" true (by_label "short").Scheduler.missed;
  checkb "long completed" true
    (Scheduler.completed_report (by_label "long") <> None)

let test_edf_not_worse_than_fifo () =
  let jobs = contended_jobs ~n:12 () in
  let fifo = Scheduler.run ~policy:Policy.Fifo jobs in
  let edf = Scheduler.run ~policy:Policy.Edf jobs in
  checkb "contention produces misses under fifo" true
    (fifo.Scheduler.summary.Scheduler.missed > 0);
  checkb "edf misses <= fifo misses" true
    (edf.Scheduler.summary.Scheduler.missed
    <= fifo.Scheduler.summary.Scheduler.missed)

let test_faulted_job_does_not_stall_queue () =
  (* A certain unrecoverable fault hits the first read of every job:
     each degrades through the executor's containment to a Faulted
     report, the loop keeps draining, and the clean summary shape
     survives. *)
  let faults =
    Injector.create ~seed:11 (Option.get (Fault_plan.preset "unrecoverable"))
  in
  let wl = Lazy.force selection in
  let jobs =
    (* Generous slacks: nothing expires, every job gets far enough to
       touch storage and take the certain fault. *)
    List.init 4 (fun i ->
        let arrival = 0.2 *. float_of_int i in
        Job.make ~seed:(50 + i) ~label:(Fmt.str "f%d" i) ~id:i
          ~catalog:wl.Paper_setup.catalog ~arrival ~deadline:(arrival +. 30.0)
          wl.Paper_setup.query)
  in
  let result = Scheduler.run ~policy:Policy.Edf ~faults jobs in
  checki "all jobs reported" 4 (List.length result.Scheduler.reports);
  checki "queue drained" 4 result.Scheduler.summary.Scheduler.completed;
  List.iter
    (fun r ->
      match Scheduler.completed_report r with
      | Some rep ->
          checkb "faulted outcome" true (rep.Report.outcome = Report.Faulted)
      | None -> Alcotest.fail "job should complete (degraded)")
    result.Scheduler.reports

let test_preemption_only_across_jobs () =
  (* A solo job can never be preempted, whatever the policy. *)
  let wl = Lazy.force join in
  let job =
    Job.make ~seed:4 ~id:0 ~catalog:wl.Paper_setup.catalog ~arrival:0.0
      ~deadline:3.0 wl.Paper_setup.query
  in
  List.iter
    (fun policy ->
      let result = Scheduler.run ~policy [ job ] in
      checki
        (Fmt.str "no preemptions under %s" (Policy.name policy))
        0 result.Scheduler.summary.Scheduler.preemptions)
    Policy.all

(* ------------------------------------------------------------------ *)
(* Policy selection                                                    *)

let cand ~key ~seq ~deadline ~laxity ~service ~weight =
  { Policy.key; seq; deadline; laxity; service; weight }

let test_policy_selection () =
  let a = cand ~key:1 ~seq:1 ~deadline:9.0 ~laxity:2.0 ~service:4.0 ~weight:1.0
  and b = cand ~key:2 ~seq:2 ~deadline:5.0 ~laxity:3.0 ~service:1.0 ~weight:1.0
  and c =
    cand ~key:3 ~seq:3 ~deadline:7.0 ~laxity:1.0 ~service:3.0 ~weight:4.0
  in
  let pick p = (Policy.select p [ a; b; c ]).Policy.key in
  checki "fifo picks admission order" 1 (pick Policy.Fifo);
  checki "edf picks earliest deadline" 2 (pick Policy.Edf);
  checki "llf picks least laxity" 3 (pick Policy.Least_laxity);
  checki "wfq picks least service per weight" 3 (pick Policy.Weighted_fair);
  (* Ties break toward earlier admission. *)
  let b' = { b with Policy.deadline = 9.0 } in
  checki "edf tie -> lower seq" 1 (Policy.select Policy.Edf [ b'; a ]).Policy.key

(* ------------------------------------------------------------------ *)
(* Job files                                                           *)

let test_job_file_parsing () =
  let wl = Lazy.force selection in
  let catalog = wl.Paper_setup.catalog in
  let lines =
    [
      "# comment";
      "";
      "0.0 | 8.0 | count(select[sel < 100](r)) | priority=2,seed=5,label=x";
      "1.5 | 3.5 | select[sel < 50](r) | min_rhw=0.1";
    ]
  in
  match Job.of_lines ~catalog lines with
  | Error m -> Alcotest.failf "parse failed: %s" m
  | Ok jobs -> (
      checki "two jobs" 2 (List.length jobs);
      match jobs with
      | [ j0; j1 ] ->
          checks "label" "x" j0.Job.label;
          checki "priority" 2 j0.Job.priority;
          checki "seed" 5 j0.Job.seed;
          checki "ids in order" 1 j1.Job.id;
          Fixtures.checkf "arrival" 1.5 j1.Job.arrival;
          checkb "min_rhw parsed" true (j1.Job.min_confidence = Some 0.1)
      | _ -> Alcotest.fail "expected exactly two jobs")

let test_job_file_errors () =
  let wl = Lazy.force selection in
  let catalog = wl.Paper_setup.catalog in
  let bad l =
    match Job.of_lines ~catalog [ l ] with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "line %S should not parse" l
  in
  bad "nonsense";
  bad "0.0 | 8.0 | count(select[sel < 100](r)) | priority=zero";
  bad "5.0 | 4.0 | count(select[sel < 100](r))";
  (* deadline before arrival *)
  bad "0.0 | 8.0 | count(select[sel <<< 100](r))"

(* Each malformed-line shape reports the offending field by name and
   value, and [of_lines] prefixes the 1-based line number — never a
   bare [Failure]. *)
let test_job_file_error_shapes () =
  let wl = Lazy.force selection in
  let catalog = wl.Paper_setup.catalog in
  let err l =
    match Job.of_line ~catalog ~id:0 l with
    | Error m -> m
    | Ok _ -> Alcotest.failf "line %S should not parse" l
  in
  let q = "count(select[sel < 100](r))" in
  checks "bad arrival names field and value" "bad arrival \"x\""
    (err ("x | 8.0 | " ^ q));
  checks "bad deadline names field and value" "bad deadline \"soon\""
    (err ("0.0 | soon | " ^ q));
  checks "bad priority names field and value" "bad priority \"zero\""
    (err ("0.0 | 8.0 | " ^ q ^ " | priority=zero"));
  checks "priority below one rejected" "bad priority \"0\""
    (err ("0.0 | 8.0 | " ^ q ^ " | priority=0"));
  checks "bad seed names field and value" "bad seed \"s\""
    (err ("0.0 | 8.0 | " ^ q ^ " | seed=s"));
  checks "bad min_rhw names field and value" "bad min_rhw \"-1\""
    (err ("0.0 | 8.0 | " ^ q ^ " | min_rhw=-1"));
  checks "unknown option named" "unknown option \"quux\""
    (err ("0.0 | 8.0 | " ^ q ^ " | quux=1"));
  checks "non key=value option shown verbatim" "option \"fast\" is not key=value"
    (err ("0.0 | 8.0 | " ^ q ^ " | fast"));
  checks "field-count shape error"
    "expected 'arrival | deadline | query [| options]' (3 or 4 fields)"
    (err "nonsense");
  checkb "query parse error carries offset" true
    (let m = err "0.0 | 8.0 | count(select[sel <<< 100](r))" in
     String.length m >= 27
     && String.sub m 0 27 = "query parse error at offset");
  checks "deadline before arrival surfaces Job.make's message"
    "Job.make: deadline before arrival"
    (err ("5.0 | 4.0 | " ^ q));
  (* of_lines: the 1-based line number of the offending raw line —
     comments and blanks count as lines but never shift job ids. *)
  (match
     Job.of_lines ~catalog
       [ "# header"; ""; "0.0 | 8.0 | " ^ q; "x | 9.0 | " ^ q ]
   with
  | Error m -> checks "line number prefixed" "line 4: bad arrival \"x\"" m
  | Ok _ -> Alcotest.fail "expected a parse error")

let test_job_make_validation () =
  let wl = Lazy.force selection in
  let catalog = wl.Paper_setup.catalog in
  let expect_invalid f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "expected Invalid_argument"
  in
  expect_invalid (fun () ->
      Job.make ~id:0 ~catalog ~arrival:(-1.0) ~deadline:1.0
        wl.Paper_setup.query);
  expect_invalid (fun () ->
      Job.make ~id:0 ~catalog ~arrival:2.0 ~deadline:2.0 wl.Paper_setup.query);
  expect_invalid (fun () ->
      Job.make ~priority:0 ~id:0 ~catalog ~arrival:0.0 ~deadline:1.0
        wl.Paper_setup.query);
  expect_invalid (fun () ->
      Job.make ~min_confidence:0.0 ~id:0 ~catalog ~arrival:0.0 ~deadline:1.0
        wl.Paper_setup.query)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "taqp_sched"
    [
      ( "bit-identity",
        [
          Alcotest.test_case "solo job == count_within, all policies" `Slow
            test_solo_job_bit_identity;
          Alcotest.test_case "solo job, nonzero arrival" `Quick
            test_solo_job_nonzero_arrival;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "two runs identical, all policies" `Slow
            test_two_runs_identical;
          Alcotest.test_case "two runs identical with admission" `Quick
            test_two_runs_identical_with_admission;
        ] );
      ( "admission",
        [
          Alcotest.test_case "zero slack rejects" `Quick
            test_admission_zero_slack;
          Alcotest.test_case "deadline below min stage cost rejects" `Quick
            test_admission_below_min_stage_cost;
          Alcotest.test_case "backlog counts against slack" `Quick
            test_admission_backlog_counts;
          Alcotest.test_case "queue full rejects" `Quick
            test_admission_queue_full;
          Alcotest.test_case "unaffordable confidence degrades" `Quick
            test_admission_degrade;
          Alcotest.test_case "accept grants full slack" `Quick
            test_admission_accept_grants_full_slack;
        ] );
      ( "scheduler",
        [
          Alcotest.test_case "rejected job is not a miss" `Quick
            test_rejected_job_is_not_missed;
          Alcotest.test_case "queued-out job expires, queue drains" `Quick
            test_unadmitted_queue_rot_expires;
          Alcotest.test_case "edf misses <= fifo misses" `Slow
            test_edf_not_worse_than_fifo;
          Alcotest.test_case "faulted jobs do not stall the queue" `Quick
            test_faulted_job_does_not_stall_queue;
          Alcotest.test_case "solo job never preempted" `Slow
            test_preemption_only_across_jobs;
        ] );
      ( "policy",
        [ Alcotest.test_case "selection per policy" `Quick test_policy_selection ] );
      ( "job-files",
        [
          Alcotest.test_case "parse options" `Quick test_job_file_parsing;
          Alcotest.test_case "reject malformed lines" `Quick
            test_job_file_errors;
          Alcotest.test_case "error shapes name field and line" `Quick
            test_job_file_error_shapes;
          Alcotest.test_case "make validates" `Quick test_job_make_validation;
        ] );
    ]
