module Stopping = Taqp_timecontrol.Stopping
module Strategy = Taqp_timecontrol.Strategy
module Sel_plus = Taqp_timecontrol.Sel_plus
module Sample_size = Taqp_timecontrol.Sample_size
module Selectivity = Taqp_estimators.Selectivity

let checkb = Alcotest.check Alcotest.bool
let checkf eps = Alcotest.check (Alcotest.float eps)

let status ?(elapsed = 0.0) ?(quota = 10.0) ?(stages = 1) ?(estimate = 100.0)
    ?rel_half_width ?(recent = [ 100.0 ]) () =
  {
    Stopping.elapsed;
    quota;
    stages;
    estimate;
    rel_half_width;
    recent_estimates = recent;
  }

(* ------------------------------------------------------------------ *)
(* Stopping criteria                                                   *)

let test_hard_deadline () =
  checkb "before quota" false
    (Stopping.should_stop Stopping.Hard_deadline (status ~elapsed:9.9 ()));
  checkb "past quota" true
    (Stopping.should_stop Stopping.Hard_deadline (status ~elapsed:10.0 ()));
  checkb "abort mode" true (Stopping.deadline_mode Stopping.Hard_deadline = `Abort)

let test_soft_deadline () =
  let soft = Stopping.Soft_deadline { grace = 0.2 } in
  checkb "observe mode" true (Stopping.deadline_mode soft = `Observe);
  checkb "allows within grace" true
    (Stopping.allows_stage soft ~predicted_end:11.9 ~quota:10.0);
  checkb "refuses beyond grace" false
    (Stopping.allows_stage soft ~predicted_end:12.1 ~quota:10.0);
  checkb "hard refuses past quota" false
    (Stopping.allows_stage Stopping.Hard_deadline ~predicted_end:10.1 ~quota:10.0)

let test_allows_stage_edges () =
  (* A zero quota admits only a zero-cost stage; a stage costing more
     than the whole quota is refused by every deadline-bearing
     criterion, including inside All. *)
  checkb "zero-cost stage at zero quota" true
    (Stopping.allows_stage Stopping.Hard_deadline ~predicted_end:0.0 ~quota:0.0);
  checkb "real stage refused at zero quota" false
    (Stopping.allows_stage Stopping.Hard_deadline ~predicted_end:1e-9 ~quota:0.0);
  checkb "zero grace gives no headroom" false
    (Stopping.allows_stage
       (Stopping.Soft_deadline { grace = 0.0 })
       ~predicted_end:0.1 ~quota:0.0);
  checkb "stage above whole quota refused" false
    (Stopping.allows_stage Stopping.Hard_deadline ~predicted_end:0.5 ~quota:0.2);
  checkb "all refuses if any member refuses" false
    (Stopping.allows_stage
       (Stopping.All [ Stopping.Max_stages 10; Stopping.Hard_deadline ])
       ~predicted_end:0.5 ~quota:0.2);
  checkb "non-deadline criteria do not gate admission" true
    (Stopping.allows_stage (Stopping.Max_stages 10) ~predicted_end:0.5
       ~quota:0.2)

let test_error_bound () =
  let c = Stopping.Error_bound { relative = 0.1; level = 0.95 } in
  checkb "wide interval continues" false
    (Stopping.should_stop c (status ~rel_half_width:0.5 ()));
  checkb "tight interval stops" true
    (Stopping.should_stop c (status ~rel_half_width:0.05 ()));
  checkb "no interval yet" false (Stopping.should_stop c (status ()))

let test_stagnation () =
  let c = Stopping.Stagnation { epsilon = 0.01; window = 3 } in
  checkb "too few stages" false
    (Stopping.should_stop c (status ~stages:2 ~recent:[ 100.0; 100.0 ] ()));
  checkb "stable stops" true
    (Stopping.should_stop c
       (status ~stages:3 ~recent:[ 100.0; 100.3; 99.8 ] ()));
  checkb "still moving" false
    (Stopping.should_stop c (status ~stages:3 ~recent:[ 100.0; 140.0; 99.0 ] ()))

let test_max_stages_and_all () =
  checkb "max stages" true
    (Stopping.should_stop (Stopping.Max_stages 2) (status ~stages:2 ()));
  let combo = Stopping.All [ Stopping.Hard_deadline; Stopping.Max_stages 5 ] in
  checkb "any fires" true (Stopping.should_stop combo (status ~stages:5 ()));
  checkb "combined abort mode" true (Stopping.deadline_mode combo = `Abort)

(* ------------------------------------------------------------------ *)
(* Strategies                                                          *)

let test_strategy_constructors () =
  checkb "default is one-at-a-time" true
    (match Strategy.default with Strategy.One_at_a_time _ -> true | _ -> false);
  checkb "bad d_beta" true
    (match Strategy.one_at_a_time ~d_beta:(-1.0) () with
    | _ -> false
    | exception Invalid_argument _ -> true);
  checkb "bad split" true
    (match Strategy.heuristic ~split:1.5 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.check Alcotest.string "names" "heuristic"
    (Strategy.name (Strategy.heuristic ~split:0.5))

(* ------------------------------------------------------------------ *)
(* sel+                                                                *)

let test_sel_plus_first_stage () =
  let r = Selectivity.create ~initial:0.7 in
  checkf 1e-9 "initial, no inflation" 0.7
    (Sel_plus.compute r ~d_beta:100.0 ~zero_beta:0.05 ~m_next:100.0
       ~n_remaining:1000.0)

let test_sel_plus_zero_fix () =
  let r = Selectivity.create ~initial:1.0 in
  Selectivity.observe r ~points:200.0 ~tuples:0.0;
  let s = Sel_plus.compute r ~d_beta:0.0 ~zero_beta:0.05 ~m_next:100.0 ~n_remaining:1000.0 in
  checkb "positive despite zero observation" true (s > 0.0);
  checkf 1e-9 "combinatorial fix value"
    (Taqp_stats.Distribution.zero_selectivity_fix ~beta:0.05 ~m:200)
    s

let test_sel_plus_monotone_in_d_beta () =
  let r = Selectivity.create ~initial:1.0 in
  Selectivity.observe r ~points:1000.0 ~tuples:100.0;
  let at d = Sel_plus.compute r ~d_beta:d ~zero_beta:0.05 ~m_next:500.0 ~n_remaining:9000.0 in
  checkf 1e-9 "d=0 is plain estimate" 0.1 (at 0.0);
  checkb "monotone" true (at 1.0 < at 2.0 && at 2.0 < at 8.0);
  checkf 1e-9 "clamped at 1" 1.0 (at 1e6)

let test_sel_plus_errors () =
  let r = Selectivity.create ~initial:1.0 in
  checkb "negative d_beta" true
    (match Sel_plus.compute r ~d_beta:(-1.0) ~zero_beta:0.05 ~m_next:1.0 ~n_remaining:2.0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  checkb "bad zero_beta" true
    (match Sel_plus.compute r ~d_beta:0.0 ~zero_beta:1.0 ~m_next:1.0 ~n_remaining:2.0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Sample-Size-Determine                                               *)

let linear_cost f = 1.0 +. (100.0 *. f)

let test_bisect_solves () =
  match
    Sample_size.bisect ~cost_at:linear_cost ~budget:26.0 ~f_min:1e-6 ~f_max:1.0 ()
  with
  | Sample_size.Fraction { f; predicted; _ } ->
      (* cost(f) = budget at f = 0.25 *)
      checkb "close to the root" true (Float.abs (f -. 0.25) < 0.01);
      checkb "never over budget" true (predicted <= 26.0)
  | _ -> Alcotest.fail "expected Fraction"

let test_bisect_budget_too_small () =
  match
    Sample_size.bisect ~cost_at:linear_cost ~budget:0.5 ~f_min:0.01 ~f_max:1.0 ()
  with
  | Sample_size.Budget_too_small { f_min_cost } ->
      checkf 1e-9 "reports the minimal cost" (linear_cost 0.01) f_min_cost
  | _ -> Alcotest.fail "expected Budget_too_small"

let test_bisect_take_everything () =
  match
    Sample_size.bisect ~cost_at:linear_cost ~budget:1000.0 ~f_min:0.01 ~f_max:1.0 ()
  with
  | Sample_size.Take_everything { predicted } ->
      checkf 1e-9 "cost at f_max" 101.0 predicted
  | _ -> Alcotest.fail "expected Take_everything"

let test_bisect_step_cost () =
  (* A block-granular staircase cost, like the real planner's. *)
  let staircase f = 0.2 *. Float.round (f *. 50.0) in
  match Sample_size.bisect ~cost_at:staircase ~budget:3.1 ~f_min:1e-6 ~f_max:1.0 () with
  | Sample_size.Fraction { f; predicted; _ } ->
      checkb "within budget" true (predicted <= 3.1);
      checkb "close to the jump" true (staircase (Float.min 1.0 (f *. 1.3)) >= 3.0)
  | _ -> Alcotest.fail "expected Fraction"

let test_bisect_errors () =
  checkb "f_min > f_max" true
    (match
       Sample_size.bisect ~cost_at:linear_cost ~budget:1.0 ~f_min:0.5 ~f_max:0.4 ()
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  checkb "bad budget" true
    (match
       Sample_size.bisect ~cost_at:linear_cost ~budget:0.0 ~f_min:0.0 ~f_max:1.0 ()
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_with_deviation () =
  (* mean(f) = 100f, std(f) = 20f; d=2: effective cost 140f. *)
  match
    Sample_size.with_deviation
      ~mean_at:(fun f -> 100.0 *. f)
      ~std_at:(fun f -> 20.0 *. f)
      ~d_alpha:2.0 ~budget:14.0 ~f_min:1e-6 ~f_max:1.0 ()
  with
  | Sample_size.Fraction { f; _ } -> checkb "solves inflated equation" true (Float.abs (f -. 0.1) < 0.01)
  | _ -> Alcotest.fail "expected Fraction"

let prop_bisect_respects_budget =
  QCheck.Test.make ~name:"bisect never exceeds the budget" ~count:200
    QCheck.(pair (QCheck.float_range 0.5 50.0) (QCheck.float_range 1.0 200.0))
    (fun (budget, slope) ->
      let cost f = 0.3 +. (slope *. f) in
      match Sample_size.bisect ~cost_at:cost ~budget ~f_min:1e-6 ~f_max:1.0 () with
      | Sample_size.Fraction { f; predicted; _ } ->
          predicted <= budget && cost f <= budget
      | Sample_size.Take_everything { predicted } -> predicted <= budget
      | Sample_size.Budget_too_small _ -> cost 1e-6 > budget)

let () =
  Alcotest.run "timecontrol"
    [
      ( "stopping",
        [
          Alcotest.test_case "hard deadline" `Quick test_hard_deadline;
          Alcotest.test_case "soft deadline" `Quick test_soft_deadline;
          Alcotest.test_case "error bound" `Quick test_error_bound;
          Alcotest.test_case "stagnation" `Quick test_stagnation;
          Alcotest.test_case "max stages / all" `Quick test_max_stages_and_all;
          Alcotest.test_case "admission edges" `Quick test_allows_stage_edges;
        ] );
      ( "strategy",
        [ Alcotest.test_case "constructors" `Quick test_strategy_constructors ] );
      ( "sel-plus",
        [
          Alcotest.test_case "first stage" `Quick test_sel_plus_first_stage;
          Alcotest.test_case "zero fix" `Quick test_sel_plus_zero_fix;
          Alcotest.test_case "monotone in d_beta" `Quick test_sel_plus_monotone_in_d_beta;
          Alcotest.test_case "errors" `Quick test_sel_plus_errors;
        ] );
      ( "sample-size",
        [
          Alcotest.test_case "solves" `Quick test_bisect_solves;
          Alcotest.test_case "budget too small" `Quick test_bisect_budget_too_small;
          Alcotest.test_case "take everything" `Quick test_bisect_take_everything;
          Alcotest.test_case "staircase cost" `Quick test_bisect_step_cost;
          Alcotest.test_case "errors" `Quick test_bisect_errors;
          Alcotest.test_case "with deviation" `Quick test_with_deviation;
          QCheck_alcotest.to_alcotest prop_bisect_respects_budget;
        ] );
    ]
