(* taqp_ha: the replicated serving tier.

   The load-bearing properties, smallest first: the breaker's
   closed/open/half-open machine is a pure function of virtual time;
   health probes debit and credit it deterministically; the
   cross-backend [summarize] reproduces [Engine.finish] bit-for-bit;
   a 1-backend cluster IS a direct [Scheduler.run] (byte-identical
   records and summary); and killing a backend mid-flight loses
   nothing the journal knew about — terminals replay byte-identically,
   the unfinished remainder migrates (or is honestly written off), and
   no job ever gets two terminal verdicts. *)

module Breaker = Taqp_net.Breaker
module Health = Taqp_net.Health
module Balancer = Taqp_net.Balancer
module Server = Taqp_net.Server
module Client = Taqp_net.Client
module Load = Taqp_net.Load
module Wire = Taqp_net.Wire
module Job = Taqp_sched.Job
module Scheduler = Taqp_sched.Scheduler
module Engine = Taqp_sched.Engine
module Sched_journal = Taqp_sched.Sched_journal
module Journal = Taqp_recover.Journal
module Paper_setup = Taqp_workload.Paper_setup
module Arrivals = Taqp_workload.Arrivals
module Ra = Taqp_relational.Ra

let checkb = Fixtures.checkb
let checki = Fixtures.checki
let checkf = Fixtures.checkf
let checks = Alcotest.check Alcotest.string

let fresh_dir stem =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "taqp_test_ha_%s_%d" stem (Unix.getpid ()))
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let cleanup_dir d =
  (try
     Sys.readdir d
     |> Array.iter (fun f -> try Sys.remove (Filename.concat d f) with _ -> ())
   with Sys_error _ -> ());
  try Unix.rmdir d with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Breaker                                                             *)

let test_breaker_machine () =
  let b = Breaker.create ~threshold:3 ~cooldown:5.0 ~backoff:2.0 () in
  checks "starts closed" "closed" (Breaker.state_name (Breaker.state b ~now:0.0));
  Breaker.record_failure b ~now:0.1;
  Breaker.record_failure b ~now:0.2;
  checks "two failures stay closed" "closed"
    (Breaker.state_name (Breaker.state b ~now:0.2));
  (* a success inside the streak resets it *)
  Breaker.record_success b ~now:0.3;
  Breaker.record_failure b ~now:0.4;
  Breaker.record_failure b ~now:0.5;
  checks "streak was reset" "closed"
    (Breaker.state_name (Breaker.state b ~now:0.5));
  Breaker.record_failure b ~now:0.6;
  checks "third consecutive failure trips" "open"
    (Breaker.state_name (Breaker.state b ~now:0.6));
  (* opinions are ignored while open *)
  Breaker.record_success b ~now:1.0;
  checks "success while open ignored" "open"
    (Breaker.state_name (Breaker.state b ~now:1.0));
  checkf "retry_after quotes the remaining cooldown" 3.6
    (Breaker.retry_after b ~now:2.0);
  checks "cooldown elapsed reads half-open" "half_open"
    (Breaker.state_name (Breaker.state b ~now:5.7));
  (* failed trial: re-open with doubled cooldown *)
  Breaker.record_failure b ~now:5.8;
  checks "failed trial re-opens" "open"
    (Breaker.state_name (Breaker.state b ~now:5.9));
  checkb "backed-off cooldown is longer" true
    (Breaker.retry_after b ~now:5.8 > 5.0);
  checks "still open inside the backed-off window" "open"
    (Breaker.state_name (Breaker.state b ~now:10.0));
  checks "half-open after the backed-off window" "half_open"
    (Breaker.state_name (Breaker.state b ~now:15.81));
  (* passed trial: closed, streaks forgotten *)
  Breaker.record_success b ~now:15.9;
  checks "passed trial closes" "closed"
    (Breaker.state_name (Breaker.state b ~now:15.9));
  checkf "closed quotes nothing" 0.0 (Breaker.retry_after b ~now:15.9)

let test_breaker_force_open () =
  let b = Breaker.create ~cooldown:3.0 () in
  Breaker.force_open b ~now:10.0;
  checks "forced open" "open" (Breaker.state_name (Breaker.state b ~now:10.0));
  checkf "cooldown runs from the forcing instant" 2.0
    (Breaker.retry_after b ~now:11.0);
  checks "then half-open" "half_open"
    (Breaker.state_name (Breaker.state b ~now:13.1))

(* ------------------------------------------------------------------ *)
(* Health                                                              *)

let test_health_bookkeeping () =
  let h = Health.create ~interval:0.25 ~deadline:1.0 () in
  checkb "first probe due immediately" true (Health.due h ~wall:100.0);
  Health.sent h ~wall:100.0;
  checkb "not due while in flight" false (Health.due h ~wall:100.3);
  checkb "not overdue inside the deadline" false
    (Health.overdue h ~wall:100.9);
  checkb "overdue past the deadline" true (Health.overdue h ~wall:101.1);
  Health.failed h ~now:5.0;
  checki "failure counted" 1 (Health.failures h);
  checkb "due again after the verdict" true (Health.due h ~wall:101.2);
  Health.sent h ~wall:101.2;
  Health.observe h ~now:6.0
    ~snapshot:{ Health.sn_now = 6.0; sn_live = 4; sn_pending = 2; sn_backlog = 12.0 };
  checki "two probes sent" 2 (Health.probes h);
  checki "depth from the snapshot" 6 (Health.depth h);
  checkf "cost prices one expected slot" 3.0 (Health.cost h);
  checkb "interval respected after a reply" false (Health.due h ~wall:101.3);
  checkb "due after the interval" true (Health.due h ~wall:101.5)

(* ------------------------------------------------------------------ *)
(* Cluster                                                             *)

let wl =
  lazy (Paper_setup.selection ~spec:(Fixtures.spec ~n_tuples:300 ()) ~seed:5 ())

let job_lines ?(slack = fun _ -> 4.0) n =
  let wl = Lazy.force wl in
  let q = Ra.to_string wl.Paper_setup.query in
  List.init n (fun i ->
      let arr = 0.2 *. float_of_int i in
      Printf.sprintf "%.17g | %.17g | %s | seed=%d,label=ha%d" arr
        (arr +. slack i) q (i + 3) i)

let result_frame d = Wire.frame_message (Wire.Result d)

let summary_fingerprint (s : Engine.summary) =
  Fmt.str
    "%d/%d/%d/%d/%d/%d/%d|%.17g|%.17g %.17g %.17g %.17g|%.17g|%.17g %.17g|%d"
    s.Engine.submitted s.Engine.admitted s.Engine.degraded s.Engine.rejected
    s.Engine.expired s.Engine.completed s.Engine.missed s.Engine.miss_rate
    s.Engine.lateness_p50 s.Engine.lateness_p99 s.Engine.lateness_p999
    s.Engine.max_lateness s.Engine.mean_queue_wait s.Engine.makespan
    s.Engine.busy_time s.Engine.preemptions

(* The cross-backend accounting is the engine's own, rebuilt from
   records: same folds, same sort, bit-identical on one engine's
   output. *)
let test_summarize_matches_engine () =
  let wl = Lazy.force wl in
  let jobs =
    List.mapi
      (fun id line ->
        match Job.of_line ~catalog:wl.Paper_setup.catalog ~id line with
        | Ok (Some j) -> j
        | _ -> Alcotest.fail "fixture line unparseable")
      (job_lines ~slack:(fun i -> if i mod 2 = 0 then 4.0 else 0.4) 6)
  in
  let r = Scheduler.run jobs in
  let records = List.map Engine.to_done_record r.Scheduler.reports in
  checks "summarize == Engine.finish"
    (summary_fingerprint r.Scheduler.summary)
    (summary_fingerprint
       (Balancer.summarize ~makespan:r.Scheduler.summary.Engine.makespan
          records))

(* One backend, no failures: the balancer is a pass-through. Both runs
   journal (journal writes are clock-charged), and every record and
   the summary must match byte for byte. *)
let test_cluster_anchor () =
  let wl = Lazy.force wl in
  let lines = job_lines 6 in
  let jpath = Filename.temp_file "taqp_test_ha_anchor" ".journal" in
  let w = Journal.create jpath in
  let jobs =
    List.mapi
      (fun id line ->
        match Job.of_line ~catalog:wl.Paper_setup.catalog ~id line with
        | Ok (Some j) -> j
        | _ -> Alcotest.fail "fixture line unparseable")
      lines
  in
  let base = Scheduler.run ~journal:w jobs in
  Journal.close w;
  Sys.remove jpath;
  let dir = fresh_dir "anchor" in
  let cluster =
    Balancer.Cluster.create ~dir ~backends:1
      ~catalog:wl.Paper_setup.catalog ~config:Taqp_core.Config.default ()
  in
  List.iter
    (fun line ->
      match Balancer.Cluster.submit cluster line with
      | `Queued (_, backend) -> checki "routed to the only backend" 0 backend
      | `Rejected (m, _) -> Alcotest.failf "anchor submit rejected: %s" m)
    lines;
  let out = Balancer.Cluster.drain cluster in
  cleanup_dir dir;
  let base_records = List.map Engine.to_done_record base.Scheduler.reports in
  checki "same record count" (List.length base_records)
    (List.length out.Balancer.Cluster.o_records);
  List.iter2
    (fun b c ->
      checks
        (Printf.sprintf "record %d byte-identical" b.Sched_journal.d_id)
        (result_frame b) (result_frame c))
    base_records out.Balancer.Cluster.o_records;
  checks "summary byte-identical"
    (summary_fingerprint base.Scheduler.summary)
    (summary_fingerprint out.Balancer.Cluster.o_summary)

let test_cluster_spreads_load () =
  let wl = Lazy.force wl in
  let dir = fresh_dir "spread" in
  let cluster =
    Balancer.Cluster.create ~dir ~backends:3
      ~catalog:wl.Paper_setup.catalog ~config:Taqp_core.Config.default ()
  in
  List.iter
    (fun line ->
      match Balancer.Cluster.submit cluster line with
      | `Queued _ -> ()
      | `Rejected (m, _) -> Alcotest.failf "submit rejected: %s" m)
    (job_lines 6);
  let out = Balancer.Cluster.drain cluster in
  cleanup_dir dir;
  let backends_used =
    List.sort_uniq compare (List.map snd out.Balancer.Cluster.o_routed)
  in
  (* identical idle engines: depth-tiebreak round-robins the first
     wave across all three *)
  checki "every backend saw work" 3 (List.length backends_used);
  checki "every job accounted once" 6
    (List.length out.Balancer.Cluster.o_records);
  checki "nothing migrated" 0 out.Balancer.Cluster.o_migrated

let run_kill_cluster ~failover () =
  let wl = Lazy.force wl in
  let dir = fresh_dir (if failover then "kill_on" else "kill_off") in
  let cluster =
    Balancer.Cluster.create ~dir ~backends:2
      ~catalog:wl.Paper_setup.catalog ~config:Taqp_core.Config.default ()
  in
  (* generous slack: migration itself must not cause misses *)
  let lines = job_lines ~slack:(fun _ -> 200.0) 8 in
  let routed =
    List.map
      (fun line ->
        match Balancer.Cluster.submit cluster line with
        | `Queued (id, backend) -> (id, backend)
        | `Rejected (m, _) -> Alcotest.failf "submit rejected: %s" m)
      lines
  in
  let on_victim = List.filter_map (fun (id, b) -> if b = 0 then Some id else None) routed in
  checkb "the victim holds work" true (List.length on_victim >= 2);
  (* run partway: warm until backend 0 has finished some of its jobs
     and still holds open ones — the kill must exercise both the
     journal replay and the migration path *)
  let victim_done () =
    List.filter (fun id -> Balancer.Cluster.frame cluster ~id <> None) on_victim
  in
  let rec warm upto =
    if upto > 500.0 then Alcotest.fail "backend 0 never finished a job"
    else begin
      Balancer.Cluster.advance cluster ~upto;
      if victim_done () = [] then warm (upto +. 0.25)
    end
  in
  warm 0.25;
  checkb "the victim still holds open work" true
    (List.length (victim_done ()) < List.length on_victim);
  Balancer.Cluster.kill cluster ~backend:0 ~failover ();
  checkb "backend 0 reads dead" false (Balancer.Cluster.alive cluster 0);
  let out = Balancer.Cluster.drain cluster in
  cleanup_dir dir;
  (lines, out)

let test_cluster_kill_failover () =
  let lines, out = run_kill_cluster ~failover:true () in
  (* exactly one terminal per submitted job — the dedupe rule *)
  checki "every job has exactly one terminal" (List.length lines)
    (List.length out.Balancer.Cluster.o_records);
  let ids =
    List.map
      (fun (d : Sched_journal.done_record) -> d.Sched_journal.d_id)
      out.Balancer.Cluster.o_records
  in
  checkb "ids unique" true (List.sort_uniq compare ids = List.sort compare ids);
  (* every journal-replayed frame matched its live push byte-for-byte *)
  checkb "replays happened" true (out.Balancer.Cluster.o_replays <> []);
  List.iter
    (fun (id, identical) ->
      checkb (Printf.sprintf "replay %d byte-identical" id) true identical)
    out.Balancer.Cluster.o_replays;
  checkb "unfinished jobs migrated" true (out.Balancer.Cluster.o_migrated > 0);
  checki "nothing lost with a survivor" 0 out.Balancer.Cluster.o_lost;
  (* generous slack: the migrated jobs still made their deadlines *)
  checki "no misses" 0 out.Balancer.Cluster.o_summary.Engine.missed

let test_cluster_kill_no_failover () =
  let lines, out = run_kill_cluster ~failover:false () in
  checki "every job still accounted" (List.length lines)
    (List.length out.Balancer.Cluster.o_records);
  checki "nothing migrated" 0 out.Balancer.Cluster.o_migrated;
  checkb "unfinished jobs written off" true (out.Balancer.Cluster.o_lost > 0);
  let lost =
    List.filter
      (fun (d : Sched_journal.done_record) ->
        String.equal d.Sched_journal.d_outcome "lost")
      out.Balancer.Cluster.o_records
  in
  checki "lost records match the write-off count"
    out.Balancer.Cluster.o_lost (List.length lost);
  List.iter
    (fun (d : Sched_journal.done_record) ->
      checkb "lost is admitted" true d.Sched_journal.d_admitted;
      checkb "lost is missed" true d.Sched_journal.d_missed;
      checkf "lost burned no device time" 0.0 d.Sched_journal.d_service)
    lost;
  checki "misses are exactly the losses" out.Balancer.Cluster.o_lost
    out.Balancer.Cluster.o_summary.Engine.missed

(* ------------------------------------------------------------------ *)
(* Proxy over real backend processes                                   *)

let spawn_backend ~journal () =
  let wl = Lazy.force wl in
  let server =
    Server.create ~gate:`Eager ~quota_capacity:1000.0 ~journal_path:journal
      ~catalog:wl.Paper_setup.catalog ~config:Taqp_core.Config.default ~port:0
      ()
  in
  let domain =
    Domain.spawn (fun () ->
        match Server.run server with
        | stats -> Ok stats
        | exception e ->
            Server.shutdown server;
            Error e)
  in
  (server, domain)

let test_proxy_round_trip () =
  let j1 = Filename.temp_file "taqp_test_ha_p1" ".journal" in
  let j2 = Filename.temp_file "taqp_test_ha_p2" ".journal" in
  let s1, d1 = spawn_backend ~journal:j1 () in
  let s2, d2 = spawn_backend ~journal:j2 () in
  let proxy =
    Balancer.Proxy.create ~port:0
      ~backends:
        [
          { Balancer.Proxy.bs_port = Server.port s1; bs_journal = Some j1 };
          { Balancer.Proxy.bs_port = Server.port s2; bs_journal = Some j2 };
        ]
      ()
  in
  let pd =
    Domain.spawn (fun () ->
        try Ok (Balancer.Proxy.run proxy) with e -> Error e)
  in
  let c =
    Client.connect_retry ~read_timeout:30.0
      ~port:(Balancer.Proxy.port proxy) ()
  in
  let n = 6 in
  let queued =
    List.filter_map
      (fun line ->
        match Client.submit c line with
        | `Queued (id, _, _) -> Some id
        | `Rejected (m, _) -> Alcotest.failf "proxy rejected: %s" m)
      (job_lines ~slack:(fun _ -> 60.0) n)
  in
  checki "all queued" n (List.length queued);
  (* global ids are the proxy's own, dense from 0 *)
  checkb "proxy owns the id space" true
    (List.sort compare queued = List.init n Fun.id);
  let summary = Client.drain c in
  let finished =
    List.filter_map
      (function Client.Finished d -> Some d.Sched_journal.d_id | _ -> None)
      (Client.pushes c)
  in
  Client.close c;
  let stats =
    match Domain.join pd with Ok s -> s | Error e -> raise e
  in
  checki "summary covers every job" n summary.Engine.submitted;
  checki "every job pushed exactly one terminal" n
    (List.length (List.sort_uniq compare finished));
  checki "no duplicate pushes" n (List.length finished);
  checki "no deaths" 0 stats.Balancer.Proxy.p_deaths;
  checki "stats records cover every job" n
    (List.length stats.Balancer.Proxy.p_records);
  ignore (Domain.join d1);
  ignore (Domain.join d2);
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ j1; j2 ]

let test_proxy_kill_backend () =
  let j1 = Filename.temp_file "taqp_test_ha_k1" ".journal" in
  let j2 = Filename.temp_file "taqp_test_ha_k2" ".journal" in
  let s1, d1 = spawn_backend ~journal:j1 () in
  let s2, d2 = spawn_backend ~journal:j2 () in
  let proxy =
    Balancer.Proxy.create ~failover:true ~port:0
      ~backends:
        [
          { Balancer.Proxy.bs_port = Server.port s1; bs_journal = Some j1 };
          { Balancer.Proxy.bs_port = Server.port s2; bs_journal = Some j2 };
        ]
      ()
  in
  let pd =
    Domain.spawn (fun () ->
        try Ok (Balancer.Proxy.run proxy) with e -> Error e)
  in
  let n = 10 in
  let wl = Lazy.force wl in
  let q = Ra.to_string wl.Paper_setup.query in
  let outcome =
    Load.run
      ~kill:(n / 2, fun () -> Server.shutdown s1)
      ~port:(Balancer.Proxy.port proxy)
      ~process:Arrivals.Poisson ~rate:1.0 ~n ~seed:11 ~clients:2
      ~make_line:(fun ~index ~offset ->
        Printf.sprintf "%.17g | %.17g | %s | seed=%d,label=kill%d" offset
          (offset +. 60.0) q (index + 3) index)
      ()
  in
  let stats =
    match Domain.join pd with Ok s -> s | Error e -> raise e
  in
  ignore (Domain.join d1);
  ignore (Domain.join d2);
  List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) [ j1; j2 ];
  checki "exactly one death" 1 stats.Balancer.Proxy.p_deaths;
  let queued =
    List.filter_map
      (fun (s : Load.submission) ->
        match s.Load.disposition with
        | Load.Queued { job_id; _ } -> Some job_id
        | Load.Door_rejected _ -> None)
      outcome.Load.submissions
  in
  checkb "the tier kept admitting through the kill" true
    (List.length queued > n / 2);
  let terminal_ids =
    List.map
      (fun (d : Sched_journal.done_record) -> d.Sched_journal.d_id)
      outcome.Load.finished
    @ List.map (fun (id, _, _) -> id) outcome.Load.refused
  in
  checkb "no duplicate terminals" true
    (List.sort compare terminal_ids = List.sort_uniq compare terminal_ids);
  List.iter
    (fun id ->
      checkb
        (Printf.sprintf "queued job %d reached a terminal verdict" id)
        true
        (List.mem id terminal_ids))
    queued;
  checki "the tier's books cover every queued job" (List.length queued)
    (List.length stats.Balancer.Proxy.p_records)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "ha"
    [
      ( "breaker",
        [
          Alcotest.test_case "closed/open/half-open machine" `Quick
            test_breaker_machine;
          Alcotest.test_case "force_open" `Quick test_breaker_force_open;
        ] );
      ( "health",
        [ Alcotest.test_case "probe bookkeeping" `Quick test_health_bookkeeping ]
      );
      ( "cluster",
        [
          Alcotest.test_case "summarize == Engine.finish" `Quick
            test_summarize_matches_engine;
          Alcotest.test_case "1-backend cluster == Scheduler.run" `Quick
            test_cluster_anchor;
          Alcotest.test_case "routing spreads idle backends" `Quick
            test_cluster_spreads_load;
          Alcotest.test_case "kill: replay + migrate, one terminal each"
            `Quick test_cluster_kill_failover;
          Alcotest.test_case "kill without failover writes off honestly"
            `Quick test_cluster_kill_no_failover;
        ] );
      ( "proxy",
        [
          Alcotest.test_case "round trip over two backends" `Quick
            test_proxy_round_trip;
          Alcotest.test_case "kill one backend under load" `Quick
            test_proxy_kill_backend;
        ] );
    ]
