open Taqp_data
module Clock = Taqp_storage.Clock
module Cost_params = Taqp_storage.Cost_params
module Device = Taqp_storage.Device
module Heap_file = Taqp_storage.Heap_file
module Catalog = Taqp_storage.Catalog
module Io_stats = Taqp_storage.Io_stats

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf eps = Alcotest.check (Alcotest.float eps)

(* ------------------------------------------------------------------ *)
(* Clock                                                               *)

let test_clock_virtual () =
  let c = Clock.create_virtual () in
  checkb "virtual" true (Clock.is_virtual c);
  checkf 1e-12 "starts at 0" 0.0 (Clock.now c);
  Clock.charge c 1.5;
  Clock.charge c 0.25;
  checkf 1e-12 "advances by charges" 1.75 (Clock.now c);
  Alcotest.check_raises "negative" (Invalid_argument "Clock.charge: negative charge")
    (fun () -> Clock.charge c (-1.0))

let test_clock_deadline_abort () =
  let c = Clock.create_virtual () in
  Clock.arm c ~mode:`Abort ~at:1.0;
  Clock.charge c 0.9;
  checkb "not yet expired" false (Clock.expired c);
  (match Clock.charge c 0.5 with
  | () -> Alcotest.fail "expected Deadline_exceeded"
  | exception Clock.Deadline_exceeded { now; deadline } ->
      checkf 1e-12 "interrupt at the deadline" 1.0 now;
      checkf 1e-12 "deadline" 1.0 deadline);
  (* The clock stopped exactly at the deadline, mid-operation. *)
  checkf 1e-12 "clamped" 1.0 (Clock.now c)

let test_clock_deadline_observe () =
  let c = Clock.create_virtual () in
  Clock.arm c ~mode:`Observe ~at:1.0;
  Clock.charge c 5.0;
  checkb "expired but not raised" true (Clock.expired c);
  Alcotest.check
    Alcotest.(option (float 1e-9))
    "remaining negative" (Some (-4.0)) (Clock.remaining c);
  Clock.disarm c;
  checkb "disarmed" false (Clock.expired c)

let test_clock_sleep_until () =
  let c = Clock.create_virtual () in
  Clock.sleep_until c 3.0;
  checkf 1e-12 "advanced" 3.0 (Clock.now c);
  Clock.sleep_until c 1.0;
  checkf 1e-12 "no backwards travel" 3.0 (Clock.now c)

(* A charge that lands exactly on the deadline is NOT an overrun: the
   interrupt only fires when the deadline is crossed. *)
let test_clock_deadline_exact_landing () =
  let c = Clock.create_virtual () in
  Clock.arm c ~mode:`Abort ~at:1.0;
  Clock.charge c 1.0;
  checkf 1e-12 "landed on the deadline" 1.0 (Clock.now c);
  checkb "not expired at the boundary" false (Clock.expired c);
  (* ...but the very next positive charge crosses it. *)
  (match Clock.charge c 1e-9 with
  | () -> Alcotest.fail "expected Deadline_exceeded"
  | exception Clock.Deadline_exceeded { now; _ } ->
      checkf 1e-12 "still clamped" 1.0 now);
  checkf 1e-12 "no time past the deadline" 1.0 (Clock.now c)

(* Observe mode must keep honest books on the overspend: charges keep
   accumulating past the deadline and [remaining] tracks the (negative)
   balance exactly. *)
let test_clock_observe_overspend_accounting () =
  let c = Clock.create_virtual () in
  Clock.arm c ~mode:`Observe ~at:1.0;
  Clock.charge c 0.75;
  Clock.charge c 0.75;
  Clock.charge c 0.5;
  checkf 1e-12 "all charges accumulated" 2.0 (Clock.now c);
  checkb "expired" true (Clock.expired c);
  Alcotest.check
    Alcotest.(option (float 1e-9))
    "overspend = 1.0s" (Some (-1.0)) (Clock.remaining c)

(* sleep_until with an armed Abort deadline: the sleeper is woken at
   the deadline, and the attached tracer records the abort instant
   stamped at exactly the deadline time. *)
let test_clock_sleep_until_abort_traced () =
  let c = Clock.create_virtual () in
  let sink, events = Taqp_obs.Sink.memory () in
  Clock.set_tracer c (Taqp_obs.Tracer.make ~now:(fun () -> Clock.now c) ~sink);
  Clock.charge c 0.5;
  Clock.arm c ~mode:`Abort ~at:2.0;
  (match Clock.sleep_until c 5.0 with
  | () -> Alcotest.fail "expected Deadline_exceeded"
  | exception Clock.Deadline_exceeded { now; deadline } ->
      checkf 1e-12 "woken at the deadline" 2.0 now;
      checkf 1e-12 "deadline" 2.0 deadline);
  checkf 1e-12 "clock stopped at the deadline" 2.0 (Clock.now c);
  let abort_events =
    List.filter
      (fun (e : Taqp_obs.Event.t) -> e.name = "deadline.abort")
      (events ())
  in
  checki "one abort event" 1 (List.length abort_events);
  let e = List.hd abort_events in
  checkf 1e-12 "abort stamped at the deadline" 2.0 e.Taqp_obs.Event.ts;
  Alcotest.(check string) "clock category" "clock" e.Taqp_obs.Event.cat

(* The recovery contract ({!Clock.restore} / {!Clock.restore_deadline}):
   both are silent — no trace events, no deadline checks — and a
   resumed run re-arms at the ORIGINAL absolute deadline recorded in
   the journal, never at [now + quota]: downtime is lost quota, not
   extra time. *)
let test_clock_restore_silent_rearm () =
  let c = Clock.create_virtual () in
  let sink, events = Taqp_obs.Sink.memory () in
  Clock.set_tracer c (Taqp_obs.Tracer.make ~now:(fun () -> Clock.now c) ~sink);
  Clock.restore c ~now:7.5;
  checkf 1e-12 "restored forward" 7.5 (Clock.now c);
  Clock.restore c ~now:3.25;
  checkf 1e-12 "restored backward" 3.25 (Clock.now c);
  Clock.restore_deadline c ~mode:`Abort ~at:4.0;
  checkb "armed at the original absolute instant" true
    (Clock.armed c = Some (`Abort, 4.0));
  checki "restore and restore_deadline emit no events" 0
    (List.length (events ()));
  (* The restored deadline is live: it interrupts exactly like one set
     through [arm]... *)
  (match Clock.charge c 2.0 with
  | () -> Alcotest.fail "expected Deadline_exceeded"
  | exception Clock.Deadline_exceeded { deadline; _ } ->
      checkf 1e-12 "fires at the restored absolute deadline" 4.0 deadline);
  (* ...and the only difference from [arm] is the traced instant. *)
  Clock.arm c ~mode:`Observe ~at:9.0;
  checkb "arm emits deadline.armed" true
    (List.exists
       (fun (e : Taqp_obs.Event.t) -> e.Taqp_obs.Event.name = "deadline.armed")
       (events ()))

(* Re-arming REPLACES the previous deadline — the contract the
   multi-query scheduler leans on when it switches the shared clock
   between jobs at stage boundaries. *)
let test_clock_rearm_replaces () =
  let c = Clock.create_virtual () in
  Clock.arm c ~mode:`Abort ~at:1.0;
  checkb "armed (abort, 1.0)" true (Clock.armed c = Some (`Abort, 1.0));
  (* Another job's later deadline takes over: the old 1.0 deadline must
     not fire. *)
  Clock.arm c ~mode:`Abort ~at:3.0;
  checkb "re-armed (abort, 3.0)" true (Clock.armed c = Some (`Abort, 3.0));
  Clock.charge c 2.0;
  checkf 1e-12 "charge crossed the replaced deadline freely" 2.0 (Clock.now c);
  (* Replacement can also change mode. *)
  Clock.arm c ~mode:`Observe ~at:2.5;
  checkb "mode replaced" true (Clock.armed c = Some (`Observe, 2.5));
  Clock.charge c 1.0;
  checkf 1e-12 "observe mode never interrupts" 3.0 (Clock.now c)

(* A finished job disarms; a later sleep_until must never raise on the
   dead job's behalf, even when the sleep crosses the old deadline. *)
let test_clock_disarm_kills_stale_deadline () =
  let c = Clock.create_virtual () in
  Clock.arm c ~mode:`Abort ~at:1.0;
  Clock.charge c 0.5;
  Clock.disarm c;
  checkb "disarmed" true (Clock.armed c = None);
  Clock.sleep_until c 10.0;
  checkf 1e-12 "slept through the stale deadline" 10.0 (Clock.now c);
  Clock.charge c 1.0;
  checkf 1e-12 "charges unconstrained" 11.0 (Clock.now c)

(* An expired-but-disarmed deadline (job finished after overspending in
   observe mode) must not leak into the next job's run either. *)
let test_clock_rearm_after_expiry () =
  let c = Clock.create_virtual () in
  Clock.arm c ~mode:`Observe ~at:1.0;
  Clock.charge c 2.0;
  checkb "expired" true (Clock.expired c);
  Clock.arm c ~mode:`Abort ~at:5.0;
  checkb "fresh deadline" true (Clock.armed c = Some (`Abort, 5.0));
  checkb "no longer expired" false (Clock.expired c);
  (match Clock.sleep_until c 4.0 with
  | () -> ()
  | exception Clock.Deadline_exceeded _ ->
      Alcotest.fail "in-window sleep must not fire the deadline");
  checkf 1e-12 "slept normally" 4.0 (Clock.now c)

let test_clock_wall () =
  let c = Clock.create_wall () in
  checkb "not virtual" false (Clock.is_virtual c);
  let t0 = Clock.now c in
  Clock.charge c 100.0;
  (* charging a wall clock does not jump time *)
  checkb "wall time unaffected by charge" true (Clock.now c -. t0 < 1.0)

(* ------------------------------------------------------------------ *)
(* Cost params                                                         *)

let test_cost_params () =
  let p = Cost_params.default in
  let doubled = Cost_params.scale 2.0 p in
  checkf 1e-12 "scaled" (2.0 *. p.Cost_params.block_read)
    doubled.Cost_params.block_read;
  checkf 1e-12 "jitter unscaled" p.Cost_params.jitter_sigma
    doubled.Cost_params.jitter_sigma;
  checkf 1e-12 "no_jitter" 0.0 (Cost_params.no_jitter p).Cost_params.jitter_sigma;
  checkb "fast is faster" true
    (Cost_params.fast.Cost_params.block_read < p.Cost_params.block_read)

(* ------------------------------------------------------------------ *)
(* Device                                                              *)

let test_device_charges_exact () =
  let p = Cost_params.no_jitter Cost_params.default in
  let clock = Clock.create_virtual () in
  let d = Device.create ~params:p clock in
  Device.read_block d;
  Device.read_block d;
  Device.check_tuples d ~n:10 ~comparisons:2;
  Device.write_pages d ~n:3;
  let expected =
    (2.0 *. p.Cost_params.block_read)
    +. (10.0
       *. (p.Cost_params.tuple_check_base +. (2.0 *. p.Cost_params.per_comparison))
       )
    +. (3.0 *. p.Cost_params.page_write)
  in
  checkf 1e-9 "exact charges" expected (Clock.now clock);
  let stats = Device.stats d in
  checki "blocks counted" 2 (Io_stats.blocks_read stats);
  checki "tuples counted" 10 (Io_stats.tuples_checked stats);
  checki "pages counted" 3 (Io_stats.pages_written stats)

let test_device_sort_cost () =
  let p = Cost_params.no_jitter Cost_params.default in
  let clock = Clock.create_virtual () in
  let d = Device.create ~params:p clock in
  Device.sort d ~n:1024;
  let expected =
    (p.Cost_params.sort_per_nlogn *. 1024.0 *. 10.0)
    +. (p.Cost_params.sort_per_tuple *. 1024.0)
  in
  checkf 1e-9 "n log n cost" expected (Clock.now clock)

let test_device_stage_overhead_counts_stage () =
  let clock = Clock.create_virtual () in
  let d = Device.create ~params:(Cost_params.no_jitter Cost_params.default) clock in
  Device.stage_overhead d;
  Device.stage_overhead d;
  checki "stages" 2 (Io_stats.stages (Device.stats d))

let test_device_jitter_mean () =
  let p = { Cost_params.default with Cost_params.jitter_sigma = 0.2 } in
  let clock = Clock.create_virtual () in
  let d = Device.create ~params:p ~jitter_rng:(Taqp_rng.Prng.create 3) clock in
  for _ = 1 to 5000 do
    Device.read_block d
  done;
  let per_block = Clock.now clock /. 5000.0 in
  checkb "jittered mean near nominal" true
    (Float.abs (per_block -. p.Cost_params.block_read)
    < 0.05 *. p.Cost_params.block_read)

let test_io_stats_diff () =
  let a = Io_stats.create () in
  for _ = 1 to 10 do
    Io_stats.incr_blocks_read a
  done;
  let b = Io_stats.copy a in
  for _ = 1 to 15 do
    Io_stats.incr_blocks_read b
  done;
  Io_stats.incr_stages b;
  Io_stats.incr_stages b;
  let d = Io_stats.diff b a in
  checki "blocks diff" 15 (Io_stats.blocks_read d);
  checki "stages diff" 2 (Io_stats.stages d);
  checki "copy detached from original" 10 (Io_stats.blocks_read a);
  Io_stats.reset b;
  checki "reset" 0 (Io_stats.blocks_read b)

(* The io.* counters registered by a device's stats and the Io_stats
   accessors must be the same cells — single source of truth. *)
let test_io_stats_metrics_shared () =
  let metrics = Taqp_obs.Metrics.create () in
  let clock = Clock.create_virtual () in
  let d =
    Device.create ~params:(Cost_params.no_jitter Cost_params.default) ~metrics
      clock
  in
  Device.read_block d;
  Device.read_block d;
  Device.read_block d;
  let c = Taqp_obs.Metrics.counter metrics "io.blocks_read" in
  checki "metrics counter sees device reads" 3 (Taqp_obs.Metrics.Counter.value c);
  checki "io_stats agrees" 3 (Io_stats.blocks_read (Device.stats d))

(* ------------------------------------------------------------------ *)
(* Heap file                                                           *)

let schema =
  Schema.make
    [ { Schema.name = "id"; ty = Value.Tint }; { Schema.name = "v"; ty = Value.Tint } ]

let tuples n = List.init n (fun i -> Tuple.of_list [ Value.Int i; Value.Int (i * i) ])

let test_heap_packing () =
  (* 1024-byte blocks, 200-byte tuples -> 5 per block. *)
  let f = Heap_file.create ~schema (tuples 23) in
  checki "tuples" 23 (Heap_file.n_tuples f);
  checki "blocking factor" 5 (Heap_file.blocking_factor f);
  checki "blocks" 5 (Heap_file.n_blocks f);
  checki "full block" 5 (Array.length (Heap_file.block f 0));
  checki "short last block" 3 (Array.length (Heap_file.block f 4));
  checki "pages_for" 3 (Heap_file.pages_for f 11);
  checkb "tuples padded to slot size" true
    (Tuple.byte_size (Heap_file.block f 0).(0) = 200)

let test_heap_order_preserved () =
  let f = Heap_file.create ~schema (tuples 12) in
  let flat = Heap_file.to_list f in
  checki "roundtrip count" 12 (List.length flat);
  List.iteri
    (fun i t ->
      checkb "order" true (Value.equal (Tuple.get t 0) (Value.Int i)))
    flat

let test_heap_fold_iter () =
  let f = Heap_file.create ~schema (tuples 7) in
  let count = ref 0 in
  Heap_file.iter (fun _ -> incr count) f;
  checki "iter visits all" 7 !count;
  let sum =
    Heap_file.fold
      (fun acc t ->
        match Value.to_int (Tuple.get t 0) with Some v -> acc + v | None -> acc)
      0 f
  in
  checki "fold" 21 sum

let test_heap_errors () =
  checkb "arity mismatch" true
    (match Heap_file.create ~schema [ Tuple.of_list [ Value.Int 1 ] ] with
    | _ -> false
    | exception Heap_file.Storage_error _ -> true);
  checkb "type mismatch" true
    (match
       Heap_file.create ~schema
         [ Tuple.of_list [ Value.String "x"; Value.Int 1 ] ]
     with
    | _ -> false
    | exception Heap_file.Storage_error _ -> true);
  checkb "oversized tuple" true
    (match
       Heap_file.create ~tuple_bytes:10 ~schema
         [ Tuple.of_list [ Value.Int 1; Value.Int 2 ] ]
     with
    | _ -> false
    | exception Heap_file.Storage_error _ -> true);
  let f = Heap_file.create ~schema (tuples 5) in
  Alcotest.check_raises "bad block index"
    (Invalid_argument "Heap_file.block: index out of range") (fun () ->
      ignore (Heap_file.block f 99))

let test_heap_read_block_charges () =
  let clock = Clock.create_virtual () in
  let d = Device.create ~params:(Cost_params.no_jitter Cost_params.default) clock in
  let f = Heap_file.create ~schema (tuples 10) in
  ignore (Heap_file.read_block d f 0);
  checki "one read" 1 (Io_stats.blocks_read (Device.stats d));
  checkf 1e-9 "charged" Cost_params.default.Cost_params.block_read (Clock.now clock)

(* ------------------------------------------------------------------ *)
(* Catalog                                                             *)

let test_catalog () =
  let f = Heap_file.create ~schema (tuples 5) in
  let c = Catalog.of_list [ ("r", f) ] in
  checkb "mem" true (Catalog.mem c "r");
  checkb "find" true (Catalog.find c "r" == f);
  checkb "find_opt none" true (Catalog.find_opt c "s" = None);
  checkb "duplicate add raises" true
    (match Catalog.add c "r" f with
    | () -> false
    | exception Heap_file.Storage_error _ -> true);
  Catalog.replace c "r" f;
  Catalog.add c "s" f;
  Alcotest.check Alcotest.(list string) "names sorted" [ "r"; "s" ] (Catalog.names c);
  Catalog.remove c "r";
  checkb "removed" false (Catalog.mem c "r")

(* ------------------------------------------------------------------ *)
(* CSV I/O                                                             *)

module Csv_io = Taqp_storage.Csv_io

let csv_schema =
  Schema.make
    [
      { Schema.name = "id"; ty = Value.Tint };
      { Schema.name = "score"; ty = Value.Tfloat };
      { Schema.name = "note"; ty = Value.Tstring };
      { Schema.name = "flag"; ty = Value.Tbool };
    ]

let csv_tuples =
  [
    Tuple.of_list [ Value.Int 1; Value.Float 1.5; Value.String "plain"; Value.Bool true ];
    Tuple.of_list
      [ Value.Int 2; Value.Float (-0.25); Value.String "with, comma"; Value.Bool false ];
    Tuple.of_list
      [ Value.Int 3; Value.Null; Value.String "quote \" inside"; Value.Null ];
  ]

let tmp_path name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_csv_roundtrip () =
  let file = Heap_file.create ~tuple_bytes:64 ~schema:csv_schema csv_tuples in
  let path = tmp_path "taqp_test_roundtrip.csv" in
  Csv_io.save file path;
  let loaded = Csv_io.load ~tuple_bytes:64 path in
  checki "tuple count" 3 (Heap_file.n_tuples loaded);
  checkb "schema preserved" true (Schema.equal csv_schema (Heap_file.schema loaded));
  List.iter2
    (fun a b -> checkb "tuples equal" true (Tuple.equal a b))
    csv_tuples (Heap_file.to_list loaded);
  Sys.remove path

let test_csv_header_parsing () =
  let s = Csv_io.schema_of_header "a:int,b:string" in
  checki "arity" 2 (Schema.arity s);
  checkb "bad type" true
    (match Csv_io.schema_of_header "a:blob" with
    | _ -> false
    | exception Csv_io.Csv_error _ -> true);
  checkb "missing type" true
    (match Csv_io.schema_of_header "a,b" with
    | _ -> false
    | exception Csv_io.Csv_error _ -> true)

let test_csv_errors () =
  let path = tmp_path "taqp_test_bad.csv" in
  let write s =
    let oc = open_out path in
    output_string oc s;
    close_out oc
  in
  write "a:int\nnot_a_number\n";
  checkb "bad int reports line" true
    (match Csv_io.load path with
    | _ -> false
    | exception Csv_io.Csv_error { line; _ } -> line = 2);
  write "a:int,b:int\n1\n";
  checkb "field count mismatch" true
    (match Csv_io.load path with
    | _ -> false
    | exception Csv_io.Csv_error _ -> true);
  write "";
  checkb "empty file" true
    (match Csv_io.load path with
    | _ -> false
    | exception Csv_io.Csv_error _ -> true);
  Sys.remove path

let test_csv_load_dir () =
  let dir = tmp_path "taqp_test_dir" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let file = Heap_file.create ~tuple_bytes:64 ~schema:csv_schema csv_tuples in
  Csv_io.save file (Filename.concat dir "alpha.csv");
  Csv_io.save file (Filename.concat dir "beta.csv");
  let catalog = Csv_io.load_dir ~tuple_bytes:64 dir in
  Alcotest.check
    Alcotest.(list string)
    "names from filenames" [ "alpha"; "beta" ] (Catalog.names catalog);
  Sys.remove (Filename.concat dir "alpha.csv");
  Sys.remove (Filename.concat dir "beta.csv")

let () =
  Alcotest.run "storage"
    [
      ( "clock",
        [
          Alcotest.test_case "virtual charges" `Quick test_clock_virtual;
          Alcotest.test_case "deadline abort" `Quick test_clock_deadline_abort;
          Alcotest.test_case "deadline observe" `Quick test_clock_deadline_observe;
          Alcotest.test_case "sleep_until" `Quick test_clock_sleep_until;
          Alcotest.test_case "deadline exact landing" `Quick
            test_clock_deadline_exact_landing;
          Alcotest.test_case "observe overspend accounting" `Quick
            test_clock_observe_overspend_accounting;
          Alcotest.test_case "restore is silent, re-arm absolute" `Quick
            test_clock_restore_silent_rearm;
          Alcotest.test_case "re-arm replaces deadline" `Quick
            test_clock_rearm_replaces;
          Alcotest.test_case "disarm kills stale deadline" `Quick
            test_clock_disarm_kills_stale_deadline;
          Alcotest.test_case "re-arm after expiry" `Quick
            test_clock_rearm_after_expiry;
          Alcotest.test_case "sleep_until abort traced" `Quick
            test_clock_sleep_until_abort_traced;
          Alcotest.test_case "wall clock" `Quick test_clock_wall;
        ] );
      ( "cost-params",
        [ Alcotest.test_case "scaling" `Quick test_cost_params ] );
      ( "device",
        [
          Alcotest.test_case "exact charges" `Quick test_device_charges_exact;
          Alcotest.test_case "sort cost" `Quick test_device_sort_cost;
          Alcotest.test_case "stage counting" `Quick
            test_device_stage_overhead_counts_stage;
          Alcotest.test_case "jitter mean" `Slow test_device_jitter_mean;
          Alcotest.test_case "io stats diff" `Quick test_io_stats_diff;
          Alcotest.test_case "io stats shared with metrics" `Quick
            test_io_stats_metrics_shared;
        ] );
      ( "heap-file",
        [
          Alcotest.test_case "packing" `Quick test_heap_packing;
          Alcotest.test_case "order" `Quick test_heap_order_preserved;
          Alcotest.test_case "fold/iter" `Quick test_heap_fold_iter;
          Alcotest.test_case "errors" `Quick test_heap_errors;
          Alcotest.test_case "read_block charges" `Quick test_heap_read_block_charges;
        ] );
      ("catalog", [ Alcotest.test_case "operations" `Quick test_catalog ]);
      ( "csv",
        [
          Alcotest.test_case "roundtrip" `Quick test_csv_roundtrip;
          Alcotest.test_case "header parsing" `Quick test_csv_header_parsing;
          Alcotest.test_case "errors" `Quick test_csv_errors;
          Alcotest.test_case "load_dir" `Quick test_csv_load_dir;
        ] );
    ]
