(* taqp_cache: the shared cross-query cache.

   The load-bearing properties:

   - cache-off is the engine: a run with no cache attached is
     deterministic and bit-identical to the pre-cache evaluator (the
     latter asserted by fingerprint determinism plus the fact that no
     cache code runs on that path);

   - invalidation means cold: after [invalidate_relation], a consumer
     compiled against the warm-then-invalidated cache produces exactly
     the report a consumer against a fresh cache does — estimates
     after a write match a cold run;

   - statistics survive sharing: with one cache shared across many
     seeded runs, estimates stay unbiased and confidence intervals
     keep their coverage — the shared prefix is still a simple random
     sample for every consumer;

   - accounting stays exact: cache hits are charged as [cache_probe]
     into the audited ledger funnel and reconciliation remains
     bit-exact, with [Cache_probe] spend > 0 on a warm run. *)

module Config = Taqp_core.Config
module Report = Taqp_core.Report
module Taqp = Taqp_core.Taqp
module Executor = Taqp_core.Executor
module Aggregate = Taqp_core.Aggregate
module Stopping = Taqp_timecontrol.Stopping
module Catalog = Taqp_storage.Catalog
module Clock = Taqp_storage.Clock
module Device = Taqp_storage.Device
module Cost_params = Taqp_storage.Cost_params
module Io_stats = Taqp_storage.Io_stats
module Stage_set = Taqp_sampling.Stage_set
module Paper_setup = Taqp_workload.Paper_setup
module Prng = Taqp_rng.Prng
module Confidence = Taqp_stats.Confidence
module Ledger = Taqp_audit.Ledger
module Cache = Taqp_cache.Cache

let checkb = Fixtures.checkb
let checki = Fixtures.checki
let checkf = Fixtures.checkf
let checks = Alcotest.check Alcotest.string

let fingerprint (r : Report.t) =
  Fmt.str "%.17g|%.17g|%.17g|%.17g|%d|%b|%a" r.Report.estimate
    r.Report.variance r.Report.confidence.Confidence.half_width
    r.Report.elapsed r.Report.stages_completed r.Report.degraded Io_stats.pp
    r.Report.io

let selection = lazy (Paper_setup.selection ~spec:(Fixtures.spec ()) ~seed:5 ())
let join = lazy (Paper_setup.join ~spec:(Fixtures.spec ()) ~seed:6 ())

let run ?cache ?(seed = 9) ?(quota = 2.0) (wl : Paper_setup.t) =
  Taqp.count_within ~config:Fixtures.observe_config ?cache ~seed
    wl.Paper_setup.catalog ~quota wl.Paper_setup.query

let invalidate_all cache (wl : Paper_setup.t) =
  List.iter
    (fun name ->
      Cache.invalidate_relation cache
        (Catalog.find wl.Paper_setup.catalog name))
    (Catalog.names wl.Paper_setup.catalog)

(* ------------------------------------------------------------------ *)
(* Cache-off and determinism                                           *)

let test_cache_off_deterministic () =
  let wl = Lazy.force selection in
  checks "no-cache runs bit-identical"
    (fingerprint (run wl))
    (fingerprint (run wl))

let test_cache_on_deterministic () =
  let wl = Lazy.force join in
  let go () = run ~cache:(Cache.create ~budget_mb:4.0 ~seed:0 ()) wl in
  checks "fresh-cache runs bit-identical" (fingerprint (go ()))
    (fingerprint (go ()))

(* ------------------------------------------------------------------ *)
(* Invalidation means cold                                             *)

let invalidation_equals_cold seed =
  let wl = Lazy.force selection in
  let warm = Cache.create ~budget_mb:4.0 ~seed:0 () in
  ignore (run ~cache:warm ~seed:(seed + 100) wl);
  invalidate_all warm wl;
  let after = run ~cache:warm ~seed wl in
  let cold = run ~cache:(Cache.create ~budget_mb:4.0 ~seed:0 ()) ~seed wl in
  fingerprint after = fingerprint cold

let test_invalidation_equals_cold () =
  checkb "post-invalidation run equals cold run" true
    (invalidation_equals_cold 9)

let prop_invalidation_equals_cold =
  QCheck.Test.make ~name:"invalidation ≡ cold for any seed" ~count:15
    QCheck.(int_range 1 1000)
    invalidation_equals_cold

(* ------------------------------------------------------------------ *)
(* Reuse pays                                                          *)

let test_reuse_reduces_device_reads () =
  let wl = Lazy.force selection in
  let cache = Cache.create ~budget_mb:8.0 ~seed:0 () in
  let first = run ~cache wl in
  let second = run ~cache ~seed:10 wl in
  checkb "second run reads fewer device blocks" true
    (second.Report.blocks_read < first.Report.blocks_read);
  let s = Cache.stats cache in
  checkb "hits recorded" true (s.Cache.hits > 0);
  checkb "hit ratio consistent" true
    (Float.abs
       (Cache.hit_ratio cache
       -. float_of_int s.Cache.hits
          /. float_of_int (s.Cache.hits + s.Cache.misses))
    < 1e-12)

(* ------------------------------------------------------------------ *)
(* Statistics survive sharing                                          *)

let test_unbiased_under_reuse () =
  (* One cache shared across many seeded runs: the mean estimate must
     stay near the exact count, exactly as without a cache. *)
  let wl = Lazy.force selection in
  let cache = Cache.create ~budget_mb:8.0 ~seed:0 () in
  let s = Taqp_stats.Summary.create () in
  for seed = 1 to 40 do
    let r = run ~cache ~seed ~quota:1.0 wl in
    Taqp_stats.Summary.add s r.Report.estimate
  done;
  let mean = Taqp_stats.Summary.mean s in
  checkb "mean near exact under heavy reuse" true
    (Float.abs (mean -. float_of_int wl.Paper_setup.exact)
    < 0.25 *. float_of_int wl.Paper_setup.exact)

let test_ci_coverage_under_reuse () =
  (* Four independent cache seeds; under each, many runs share the
     cache. The nominal-level confidence intervals must keep their
     coverage despite every run after the first sampling warm. *)
  let wl = Lazy.force selection in
  let exact = float_of_int wl.Paper_setup.exact in
  List.iter
    (fun cache_seed ->
      let cache = Cache.create ~budget_mb:8.0 ~seed:cache_seed () in
      let covered = ref 0 in
      let n = 30 in
      for seed = 1 to n do
        let r = run ~cache ~seed ~quota:1.0 wl in
        if Confidence.contains r.Report.confidence exact then incr covered
      done;
      checkb
        (Fmt.str "coverage under reuse (cache seed %d)" cache_seed)
        true
        (float_of_int !covered /. float_of_int n >= 0.75))
    [ 0; 1; 2; 3 ]

(* ------------------------------------------------------------------ *)
(* Eviction and exhaustion                                             *)

let test_tiny_budget_still_exact_on_exhaustion () =
  (* A budget too small to hold anything still never corrupts: with an
     unbounded quota the evaluator exhausts the relation and reports
     the exact count, evictions notwithstanding. *)
  let wl = Lazy.force selection in
  let cache = Cache.create ~budget_mb:0.01 ~seed:0 () in
  ignore (run ~cache wl);
  let r = run ~cache ~seed:2 ~quota:1e6 wl in
  checkb "exact flag" true r.Report.exact;
  checkf "estimate equals exact"
    (float_of_int wl.Paper_setup.exact)
    r.Report.estimate;
  let s = Cache.stats cache in
  checkb "bytes within budget" true (s.Cache.bytes <= Cache.budget_bytes cache)

(* ------------------------------------------------------------------ *)
(* Accounting                                                          *)

let solo_audited ?cache ~ledger (wl : Paper_setup.t) =
  let clock = Clock.create_virtual () in
  let device =
    Device.create ~params:(Cost_params.no_jitter Cost_params.default) clock
  in
  Device.set_spend_listener device (Some (Ledger.on_spend ledger));
  let h =
    Executor.start ~config:Fixtures.observe_config ~aggregate:Aggregate.Count
      ?cache ~device ~catalog:wl.Paper_setup.catalog ~rng:(Prng.create 3)
      ~quota:2.0 wl.Paper_setup.query
  in
  let rec loop () =
    match Executor.step h with `Continue -> loop () | `Done r -> r
  in
  loop ()

let test_warm_audited_run_reconciles () =
  let wl = Lazy.force selection in
  let cache = Cache.create ~budget_mb:8.0 ~seed:0 () in
  (* warm pass, unaudited *)
  ignore (run ~cache wl);
  let l = Ledger.create () in
  let r = solo_audited ~cache ~ledger:l wl in
  checkb "warm run hit the cache" true
    (Ledger.spend l Ledger.Cache_probe > 0.0);
  let rec_ = Ledger.reconcile ~quota:2.0 l in
  checkb "reconciliation bit-exact with cache hits" true rec_.Ledger.r_exact;
  checkf "ledger total equals elapsed" r.Report.elapsed (Ledger.charged l)

let test_cold_audited_run_has_no_probe_spend () =
  let wl = Lazy.force selection in
  let l = Ledger.create () in
  ignore (solo_audited ~ledger:l wl);
  checkf "no cache, no probe spend" 0.0 (Ledger.spend l Ledger.Cache_probe)

let test_cache_probe_label_routes () =
  checkb "cache_probe label routes to its category" true
    (Ledger.category_of_label "cache_probe" = Ledger.Cache_probe)

(* ------------------------------------------------------------------ *)
(* Stage_set.record_stage validation                                   *)

let test_record_stage_validates () =
  let fresh () = Stage_set.create ~n_units:10 (Prng.create 1) in
  let s = fresh () in
  Stage_set.record_stage s [ 0; 3; 7 ];
  Alcotest.check_raises "duplicate unit rejected"
    (Invalid_argument "Stage_set.record_stage: unit already drawn")
    (fun () -> Stage_set.record_stage s [ 3 ]);
  Alcotest.check_raises "out-of-range unit rejected"
    (Invalid_argument "Stage_set.record_stage: unit out of range")
    (fun () -> Stage_set.record_stage (fresh ()) [ 10 ])

let test_record_stage_then_draw_disjoint () =
  (* Falling back to the private stream after recorded stages must
     continue without replacement: draws never repeat recorded units. *)
  let s = Stage_set.create ~n_units:20 (Prng.create 7) in
  let recorded = [ 0; 1; 2; 3; 4; 5; 6; 7 ] in
  Stage_set.record_stage s recorded;
  let drawn = Stage_set.draw_stage s ~k:12 in
  checki "drains the remainder" 12 (List.length drawn);
  List.iter
    (fun u -> checkb "fresh draw avoids recorded units" false
        (List.mem u recorded))
    drawn

(* ------------------------------------------------------------------ *)
(* Prediction                                                          *)

let test_predict_misses_read_only () =
  let wl = Lazy.force selection in
  let cache = Cache.create ~budget_mb:8.0 ~seed:0 () in
  let file =
    Catalog.find wl.Paper_setup.catalog
      (List.hd (Catalog.names wl.Paper_setup.catalog))
  in
  let p1 = Cache.predict_misses cache ~file ~kind:Cache.Blocks ~lo:0 ~k:5 in
  let p2 = Cache.predict_misses cache ~file ~kind:Cache.Blocks ~lo:0 ~k:5 in
  checki "prediction is stable (no randomness consumed)" p1 p2;
  checki "cold cache predicts every block missing" 5 p1;
  (* materialize the prefix, run nothing: prediction unchanged until
     blocks are actually stored *)
  ignore (Cache.prefix_units cache ~file ~kind:Cache.Blocks ~lo:0 ~k:5);
  checki "prediction respects materialized-but-unstored" 5
    (Cache.predict_misses cache ~file ~kind:Cache.Blocks ~lo:0 ~k:5)

let () =
  Alcotest.run "cache"
    [
      ( "identity",
        [
          Alcotest.test_case "cache-off deterministic" `Quick
            test_cache_off_deterministic;
          Alcotest.test_case "cache-on deterministic" `Quick
            test_cache_on_deterministic;
          Alcotest.test_case "invalidation equals cold" `Quick
            test_invalidation_equals_cold;
          QCheck_alcotest.to_alcotest prop_invalidation_equals_cold;
        ] );
      ( "reuse",
        [
          Alcotest.test_case "reuse reduces device reads" `Quick
            test_reuse_reduces_device_reads;
          Alcotest.test_case "unbiased under reuse" `Slow
            test_unbiased_under_reuse;
          Alcotest.test_case "CI coverage under reuse" `Slow
            test_ci_coverage_under_reuse;
        ] );
      ( "eviction",
        [
          Alcotest.test_case "tiny budget still exact" `Quick
            test_tiny_budget_still_exact_on_exhaustion;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "warm audited run reconciles" `Quick
            test_warm_audited_run_reconciles;
          Alcotest.test_case "cold run has no probe spend" `Quick
            test_cold_audited_run_has_no_probe_spend;
          Alcotest.test_case "cache_probe label routes" `Quick
            test_cache_probe_label_routes;
        ] );
      ( "stage_set",
        [
          Alcotest.test_case "record_stage validates" `Quick
            test_record_stage_validates;
          Alcotest.test_case "record then draw stays disjoint" `Quick
            test_record_stage_then_draw_disjoint;
        ] );
      ( "prediction",
        [
          Alcotest.test_case "predict_misses is read-only" `Quick
            test_predict_misses_read_only;
        ] );
    ]
