open Taqp_data
open Taqp_relational
module Heap_file = Taqp_storage.Heap_file
module Catalog = Taqp_storage.Catalog

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let schema_rs =
  Schema.make
    [ { Schema.name = "a"; ty = Value.Tint }; { Schema.name = "b"; ty = Value.Tint } ]

let mk_tuple a b = Tuple.of_list [ Value.Int a; Value.Int b ]

let file_of pairs =
  Heap_file.create ~block_bytes:64 ~tuple_bytes:16 ~schema:schema_rs
    (List.map (fun (a, b) -> mk_tuple a b) pairs)

(* ------------------------------------------------------------------ *)
(* Predicate                                                           *)

let test_predicate_eval () =
  let open Predicate in
  let pred =
    And
      ( Cmp (Gt, Attr "a", Const (Value.Int 2)),
        Or (Cmp (Eq, Attr "b", Const (Value.Int 0)), Not (Cmp (Lt, Attr "b", Attr "a")))
      )
  in
  let test = compile schema_rs pred in
  checkb "3,0 passes" true (test (mk_tuple 3 0));
  checkb "3,5 passes (b >= a)" true (test (mk_tuple 3 5));
  checkb "3,1 fails" false (test (mk_tuple 3 1));
  checkb "1,0 fails on first conjunct" false (test (mk_tuple 1 0))

let test_predicate_arith () =
  let open Predicate in
  let pred = Cmp (Eq, Add (Attr "a", Attr "b"), Const (Value.Int 10)) in
  let test = compile schema_rs pred in
  checkb "4+6" true (test (mk_tuple 4 6));
  checkb "4+5" false (test (mk_tuple 4 5));
  let div = compile schema_rs (Cmp (Eq, Div (Attr "a", Attr "b"), Const (Value.Int 2))) in
  checkb "int division" true (div (mk_tuple 5 2));
  checkb "division by zero is null -> false" false (div (mk_tuple 5 0))

let test_predicate_null_semantics () =
  let open Predicate in
  let schema = Schema.make [ { Schema.name = "a"; ty = Value.Tint } ] in
  let test = compile schema (Cmp (Eq, Attr "a", Const Value.Null)) in
  checkb "null = null is false" false (test (Tuple.of_list [ Value.Null ]));
  let ne = compile schema (Not (Cmp (Eq, Attr "a", Const Value.Null))) in
  checkb "negation of null comparison" true (ne (Tuple.of_list [ Value.Int 1 ]))

let test_predicate_typecheck () =
  let open Predicate in
  checkb "string vs int comparison rejected" true
    (match typecheck schema_rs (Cmp (Eq, Attr "a", Const (Value.String "x"))) with
    | () -> false
    | exception Type_error _ -> true);
  checkb "arith on string rejected" true
    (match
       typecheck schema_rs (Cmp (Eq, Add (Const (Value.String "x"), Attr "a"), Attr "b"))
     with
    | () -> false
    | exception Type_error _ -> true);
  checkb "unknown attr rejected" true
    (match typecheck schema_rs (Cmp (Eq, Attr "zzz", Attr "a")) with
    | () -> false
    | exception Type_error _ -> true)

let test_predicate_shape_helpers () =
  let open Predicate in
  let p =
    And
      ( Cmp (Eq, Attr "l.x", Attr "r.y"),
        And (Cmp (Gt, Attr "l.z", Const (Value.Int 3)), Cmp (Eq, Attr "l.w", Attr "r.w"))
      )
  in
  checki "comparisons" 3 (comparisons p);
  Alcotest.check
    Alcotest.(list string)
    "attrs in order" [ "l.x"; "r.y"; "l.z"; "l.w"; "r.w" ]
    (attrs p);
  checki "equi pairs" 2 (List.length (equi_join_pairs p));
  checki "residual comparisons" 1 (comparisons (residual_of_equi p))

(* ------------------------------------------------------------------ *)
(* Ops against brute force                                             *)

let all_pairs l r = List.concat_map (fun a -> List.map (fun b -> (a, b)) r) l

let test_select_matches_filter () =
  let f = file_of [ (1, 1); (2, 4); (3, 9); (4, 16); (5, 25) ] in
  let tuples = Array.of_list (Heap_file.to_list f) in
  let pred = Predicate.Cmp (Predicate.Gt, Predicate.Attr "b", Predicate.Const (Value.Int 5)) in
  let out = Ops.select ~schema:schema_rs pred tuples in
  checki "three qualify" 3 (Array.length out)

let test_merge_join_matches_nested_loop () =
  let left = [ (1, 10); (2, 20); (2, 21); (3, 30) ] in
  let right = [ (2, 100); (2, 200); (3, 300); (4, 400) ] in
  let sl = Schema.qualify "l" schema_rs and sr = Schema.qualify "r" schema_rs in
  let pred = Predicate.Cmp (Predicate.Eq, Predicate.Attr "l.a", Predicate.Attr "r.a") in
  let lt = Array.of_list (List.map (fun (a, b) -> mk_tuple a b) left) in
  let rt = Array.of_list (List.map (fun (a, b) -> mk_tuple a b) right) in
  let out = Ops.merge_join ~schema_l:sl ~schema_r:sr pred lt rt in
  let expected =
    List.filter (fun ((a, _), (c, _)) -> a = c) (all_pairs left right)
  in
  checki "pair count matches nested loop" (List.length expected) (Array.length out);
  (* 2 matches with 2: 2x2=4; 3 with 3: 1. *)
  checki "multiplicities" 5 (Array.length out)

let test_join_with_residual () =
  let sl = Schema.qualify "l" schema_rs and sr = Schema.qualify "r" schema_rs in
  let pred =
    Predicate.And
      ( Predicate.Cmp (Predicate.Eq, Predicate.Attr "l.a", Predicate.Attr "r.a"),
        Predicate.Cmp (Predicate.Lt, Predicate.Attr "l.b", Predicate.Attr "r.b") )
  in
  let lt = Array.of_list [ mk_tuple 1 5; mk_tuple 1 50 ] in
  let rt = Array.of_list [ mk_tuple 1 10 ] in
  let out = Ops.merge_join ~schema_l:sl ~schema_r:sr pred lt rt in
  checki "residual filters" 1 (Array.length out)

let test_theta_join_nested_loop_fallback () =
  let sl = Schema.qualify "l" schema_rs and sr = Schema.qualify "r" schema_rs in
  let pred = Predicate.Cmp (Predicate.Lt, Predicate.Attr "l.a", Predicate.Attr "r.a") in
  let lt = Array.of_list [ mk_tuple 1 0; mk_tuple 3 0 ] in
  let rt = Array.of_list [ mk_tuple 2 0; mk_tuple 4 0 ] in
  let out = Ops.merge_join ~schema_l:sl ~schema_r:sr pred lt rt in
  (* pairs with l.a < r.a: (1,2),(1,4),(3,4) *)
  checki "theta join" 3 (Array.length out)

let test_intersect_multiplicity () =
  let lt = Array.of_list [ mk_tuple 1 1; mk_tuple 1 1; mk_tuple 2 2 ] in
  let rt = Array.of_list [ mk_tuple 1 1; mk_tuple 3 3 ] in
  let out = Ops.intersect ~schema:schema_rs lt rt in
  (* each (left, right) matching point yields one output: 2x1 = 2 *)
  checki "point multiplicity" 2 (Array.length out)

let test_project_groups () =
  let tuples =
    Array.of_list [ mk_tuple 1 7; mk_tuple 2 7; mk_tuple 3 8; mk_tuple 4 7 ]
  in
  let groups = Ops.project_groups ~schema:schema_rs [ "b" ] tuples in
  checki "two groups" 2 (Array.length groups);
  let occ_of v =
    Array.to_list groups
    |> List.find_map (fun (t, c) ->
           if Value.equal (Tuple.get t 0) (Value.Int v) then Some c else None)
  in
  Alcotest.check Alcotest.(option int) "b=7 occupancy" (Some 3) (occ_of 7);
  Alcotest.check Alcotest.(option int) "b=8 occupancy" (Some 1) (occ_of 8)

let test_union_difference () =
  let a = Array.of_list [ mk_tuple 1 1; mk_tuple 2 2 ] in
  let b = Array.of_list [ mk_tuple 2 2; mk_tuple 3 3 ] in
  checki "union" 3 (Array.length (Ops.union a b));
  checki "difference" 1 (Array.length (Ops.difference a b));
  checki "difference other way" 1 (Array.length (Ops.difference b a));
  checki "empty difference" 0 (Array.length (Ops.difference a a));
  checki "distinct" 2 (Array.length (Ops.distinct (Array.append a a)))

(* Property tests over the physical operators. *)

let pairs_gen n = QCheck.Gen.(list_size (int_range 0 n) (pair (int_range 0 6) (int_range 0 6)))

let tuples_of pairs = Array.of_list (List.map (fun (a, b) -> mk_tuple a b) pairs)

let prop_sort_stage_sorted_permutation =
  QCheck.Test.make ~name:"sort_stage: sorted permutation" ~count:200
    (QCheck.make (pairs_gen 30)) (fun pairs ->
      let arr = tuples_of pairs in
      let sorted = Ops.sort_stage ~key:[| 1 |] arr in
      Array.length sorted = Array.length arr
      && List.sort Tuple.compare (Array.to_list sorted)
         = List.sort Tuple.compare (Array.to_list arr)
      &&
      let ok = ref true in
      for i = 0 to Array.length sorted - 2 do
        if Tuple.compare_on [| 1 |] sorted.(i) sorted.(i + 1) > 0 then ok := false
      done;
      !ok)

let prop_select_is_filter =
  QCheck.Test.make ~name:"select = Array filter" ~count:200
    (QCheck.make QCheck.Gen.(pair (pairs_gen 30) (int_range 0 6)))
    (fun (pairs, k) ->
      let arr = tuples_of pairs in
      let pred =
        Predicate.Cmp (Predicate.Le, Predicate.Attr "a", Predicate.Const (Value.Int k))
      in
      let out = Ops.select ~schema:schema_rs pred arr in
      Array.length out = List.length (List.filter (fun (a, _) -> a <= k) pairs))

let prop_merge_sorted_join_matches_merge_join =
  QCheck.Test.make ~name:"merge_sorted_join = merge_join on sorted inputs"
    ~count:200
    (QCheck.make QCheck.Gen.(pair (pairs_gen 15) (pairs_gen 15)))
    (fun (l, r) ->
      let sl = Schema.qualify "l" schema_rs and sr = Schema.qualify "r" schema_rs in
      let pred = Predicate.Cmp (Predicate.Eq, Predicate.Attr "l.a", Predicate.Attr "r.a") in
      let lt = tuples_of l and rt = tuples_of r in
      let via_join = Ops.merge_join ~schema_l:sl ~schema_r:sr pred lt rt in
      let sorted_l = Ops.sort_stage ~key:[| 0 |] lt in
      let sorted_r = Ops.sort_stage ~key:[| 0 |] rt in
      let via_sorted =
        Ops.merge_sorted_join ~key_l:[| 0 |] ~key_r:[| 0 |]
          ~residual:(fun _ -> true)
          ~residual_comparisons:0 sorted_l sorted_r
      in
      List.sort Tuple.compare (Array.to_list via_join)
      = List.sort Tuple.compare via_sorted)

let prop_project_occupancies_sum =
  QCheck.Test.make ~name:"project group occupancies sum to input" ~count:200
    (QCheck.make (pairs_gen 40)) (fun pairs ->
      let arr = tuples_of pairs in
      let groups = Ops.project_groups ~schema:schema_rs [ "a" ] arr in
      Array.fold_left (fun acc (_, c) -> acc + c) 0 groups = Array.length arr
      && Array.length (Ops.distinct (Array.map fst groups)) = Array.length groups)

let prop_inclusion_exclusion_cardinality =
  QCheck.Test.make ~name:"|A union B| = |A| + |B| - |A inter B| (sets)" ~count:200
    (QCheck.make QCheck.Gen.(pair (pairs_gen 15) (pairs_gen 15)))
    (fun (l, r) ->
      let dedup x = List.sort_uniq compare x in
      let l = dedup l and r = dedup r in
      let lt = tuples_of l and rt = tuples_of r in
      let union = Array.length (Ops.union lt rt) in
      let inter = Array.length (Ops.intersect ~schema:schema_rs lt rt) in
      union = List.length l + List.length r - inter)

let prop_difference_partition =
  QCheck.Test.make ~name:"A = (A - B) + (A inter B) for sets" ~count:200
    (QCheck.make QCheck.Gen.(pair (pairs_gen 15) (pairs_gen 15)))
    (fun (l, r) ->
      let dedup x = List.sort_uniq compare x in
      let l = dedup l and r = dedup r in
      let lt = tuples_of l and rt = tuples_of r in
      let diff = Array.length (Ops.difference lt rt) in
      let inter = Array.length (Ops.intersect ~schema:schema_rs lt rt) in
      diff + inter = List.length l)

let test_empty_operands () =
  let e = [||] and full = tuples_of [ (1, 1); (2, 2) ] in
  checki "select empty" 0
    (Array.length (Ops.select ~schema:schema_rs Predicate.True e));
  checki "join empty left" 0
    (Array.length
       (Ops.merge_join
          ~schema_l:(Schema.qualify "l" schema_rs)
          ~schema_r:(Schema.qualify "r" schema_rs)
          (Predicate.Cmp (Predicate.Eq, Predicate.Attr "l.a", Predicate.Attr "r.a"))
          e full));
  checki "intersect empty" 0 (Array.length (Ops.intersect ~schema:schema_rs full e));
  checki "union with empty" 2 (Array.length (Ops.union full e));
  checki "difference from empty" 0 (Array.length (Ops.difference e full));
  checki "project empty" 0
    (Array.length (Ops.project_groups ~schema:schema_rs [ "a" ] e))

(* ------------------------------------------------------------------ *)
(* Ra schema inference                                                 *)

let catalog_rs () =
  Catalog.of_list
    [ ("r", file_of [ (1, 1); (2, 2) ]); ("s", file_of [ (2, 2); (3, 3) ]) ]

let test_infer_basics () =
  let catalog = catalog_rs () in
  let s = Ra.infer_catalog catalog (Ra.relation "r") in
  Alcotest.check Alcotest.(list string) "qualified" [ "r.a"; "r.b" ] (Schema.names s);
  let j =
    Ra.infer_catalog catalog
      (Ra.Join
         ( Predicate.Cmp (Predicate.Eq, Predicate.Attr "r.a", Predicate.Attr "s.a"),
           Ra.relation "r",
           Ra.relation "s" ))
  in
  checki "join arity" 4 (Schema.arity j)

let test_infer_errors () =
  let catalog = catalog_rs () in
  let raises e = match Ra.infer_catalog catalog e with
    | _ -> false
    | exception Ra.Type_error _ -> true
  in
  checkb "unknown relation" true (raises (Ra.relation "nope"));
  checkb "self join needs alias" true
    (raises (Ra.Join (Predicate.True, Ra.relation "r", Ra.relation "r")));
  checkb "aliased self join ok" false
    (raises (Ra.Join (Predicate.True, Ra.relation "r", Ra.relation ~alias:"r2" "r")));
  checkb "bad projection" true (raises (Ra.Project ([ "zzz" ], Ra.relation "r")));
  checkb "empty projection" true (raises (Ra.Project ([], Ra.relation "r")));
  checkb "union incompatible" true
    (raises
       (Ra.Union (Ra.relation "r", Ra.Project ([ "a" ], Ra.relation ~alias:"s2" "s"))))

let test_ra_structure () =
  let e =
    Ra.Union
      ( Ra.Select (Predicate.True, Ra.relation "r"),
        Ra.Join (Predicate.True, Ra.relation "r", Ra.relation ~alias:"s2" "s") )
  in
  checki "leaves" 3 (List.length (Ra.leaves e));
  Alcotest.check Alcotest.(list string) "distinct relations" [ "r"; "s" ]
    (Ra.relation_names e);
  checkb "has union" true (Ra.has_union_or_difference e);
  checkb "not sjip" false (Ra.is_sjip e);
  checki "size" 6 (Ra.size e);
  checkb "projection detection" true
    (Ra.has_projection (Ra.Project ([ "a" ], Ra.relation "r")))

(* ------------------------------------------------------------------ *)
(* Eval: exact evaluation vs hand-computed results                     *)

let test_eval_count_select () =
  let catalog = catalog_rs () in
  let q =
    Ra.Select
      (Predicate.Cmp (Predicate.Ge, Predicate.Attr "a", Predicate.Const (Value.Int 2)),
       Ra.relation "r")
  in
  checki "count" 1 (Eval.count catalog q)

let test_eval_count_ops () =
  let catalog = catalog_rs () in
  checki "intersect" 1 (Eval.count catalog (Ra.Intersect (Ra.relation "r", Ra.relation "s")));
  checki "union" 3 (Eval.count catalog (Ra.Union (Ra.relation "r", Ra.relation "s")));
  checki "difference" 1
    (Eval.count catalog (Ra.Difference (Ra.relation "r", Ra.relation "s")));
  checki "join on key" 1
    (Eval.count catalog
       (Ra.Join
          ( Predicate.Cmp (Predicate.Eq, Predicate.Attr "r.a", Predicate.Attr "s.a"),
            Ra.relation "r",
            Ra.relation "s" )))

let test_eval_charges_device () =
  let catalog = catalog_rs () in
  let clock = Taqp_storage.Clock.create_virtual () in
  let device =
    Taqp_storage.Device.create
      ~params:(Taqp_storage.Cost_params.no_jitter Taqp_storage.Cost_params.default)
      clock
  in
  ignore (Eval.eval ~device catalog (Ra.relation "r"));
  checkb "charged some time" true (Taqp_storage.Clock.now clock > 0.0);
  checkb "read all blocks" true
    (Taqp_storage.Io_stats.blocks_read (Taqp_storage.Device.stats device) > 0)

(* Randomized: Eval against a brute-force model on tiny relations. *)
let prop_eval_select_matches_model =
  QCheck.Test.make ~name:"Eval select = model filter" ~count:100
    QCheck.(pair (list_of_size Gen.(int_range 0 20) (pair (int_range 0 5) (int_range 0 5)))
              (int_range 0 5))
    (fun (rows, threshold) ->
      QCheck.assume (rows <> []);
      let catalog = Catalog.of_list [ ("t", file_of rows) ] in
      let q =
        Ra.Select
          ( Predicate.Cmp
              (Predicate.Lt, Predicate.Attr "a", Predicate.Const (Value.Int threshold)),
            Ra.relation "t" )
      in
      Eval.count catalog q = List.length (List.filter (fun (a, _) -> a < threshold) rows))

let prop_eval_join_matches_model =
  QCheck.Test.make ~name:"Eval equi-join = model nested loop" ~count:100
    QCheck.(pair (list_of_size Gen.(int_range 0 12) (pair (int_range 0 4) (int_range 0 4)))
              (list_of_size Gen.(int_range 0 12) (pair (int_range 0 4) (int_range 0 4))))
    (fun (l, r) ->
      QCheck.assume (l <> [] && r <> []);
      let catalog = Catalog.of_list [ ("l", file_of l); ("r", file_of r) ] in
      let q =
        Ra.Join
          ( Predicate.Cmp (Predicate.Eq, Predicate.Attr "l.a", Predicate.Attr "r.a"),
            Ra.relation "l",
            Ra.relation "r" )
      in
      Eval.count catalog q
      = List.length (List.filter (fun ((a, _), (c, _)) -> a = c) (all_pairs l r)))

let dedup l = List.sort_uniq compare l

let prop_eval_union_matches_model =
  QCheck.Test.make ~name:"Eval union/difference = set model" ~count:100
    QCheck.(pair (list_of_size Gen.(int_range 0 10) (pair (int_range 0 3) (int_range 0 3)))
              (list_of_size Gen.(int_range 0 10) (pair (int_range 0 3) (int_range 0 3))))
    (fun (l, r) ->
      let l = dedup l and r = dedup r in
      QCheck.assume (l <> [] && r <> []);
      let catalog = Catalog.of_list [ ("l", file_of l); ("r", file_of r) ] in
      let union = Eval.count catalog (Ra.Union (Ra.relation "l", Ra.relation "r")) in
      let diff = Eval.count catalog (Ra.Difference (Ra.relation "l", Ra.relation "r")) in
      union = List.length (dedup (l @ r))
      && diff = List.length (List.filter (fun x -> not (List.mem x r)) l))

let () =
  Alcotest.run "relational"
    [
      ( "predicate",
        [
          Alcotest.test_case "boolean evaluation" `Quick test_predicate_eval;
          Alcotest.test_case "arithmetic" `Quick test_predicate_arith;
          Alcotest.test_case "null semantics" `Quick test_predicate_null_semantics;
          Alcotest.test_case "typechecking" `Quick test_predicate_typecheck;
          Alcotest.test_case "shape helpers" `Quick test_predicate_shape_helpers;
        ] );
      ( "ops",
        [
          Alcotest.test_case "select" `Quick test_select_matches_filter;
          Alcotest.test_case "merge join vs nested loop" `Quick
            test_merge_join_matches_nested_loop;
          Alcotest.test_case "join residual" `Quick test_join_with_residual;
          Alcotest.test_case "theta join fallback" `Quick
            test_theta_join_nested_loop_fallback;
          Alcotest.test_case "intersect multiplicity" `Quick test_intersect_multiplicity;
          Alcotest.test_case "project groups" `Quick test_project_groups;
          Alcotest.test_case "union/difference" `Quick test_union_difference;
          Alcotest.test_case "empty operands" `Quick test_empty_operands;
          QCheck_alcotest.to_alcotest prop_sort_stage_sorted_permutation;
          QCheck_alcotest.to_alcotest prop_select_is_filter;
          QCheck_alcotest.to_alcotest prop_merge_sorted_join_matches_merge_join;
          QCheck_alcotest.to_alcotest prop_project_occupancies_sum;
          QCheck_alcotest.to_alcotest prop_inclusion_exclusion_cardinality;
          QCheck_alcotest.to_alcotest prop_difference_partition;
        ] );
      ( "ra",
        [
          Alcotest.test_case "schema inference" `Quick test_infer_basics;
          Alcotest.test_case "type errors" `Quick test_infer_errors;
          Alcotest.test_case "structure helpers" `Quick test_ra_structure;
        ] );
      ( "eval",
        [
          Alcotest.test_case "select count" `Quick test_eval_count_select;
          Alcotest.test_case "set operators" `Quick test_eval_count_ops;
          Alcotest.test_case "device charging" `Quick test_eval_charges_device;
          QCheck_alcotest.to_alcotest prop_eval_select_matches_model;
          QCheck_alcotest.to_alcotest prop_eval_join_matches_model;
          QCheck_alcotest.to_alcotest prop_eval_union_matches_model;
        ] );
    ]
