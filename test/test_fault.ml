(* The fault-injection layer: scenario DSL, injector determinism,
   device-level fault semantics (spikes, stalls, retries, escalation)
   and the executor's graceful degradation. The three properties the
   harness exists to guarantee:
     - Fault_plan.none is bit-identical to no fault layer at all;
     - the same fault seed replays the same faults, report and trace;
     - recoverable faults cost time but never touch the estimator. *)

module Fault_plan = Taqp_fault.Fault_plan
module Injector = Taqp_fault.Injector
module Config = Taqp_core.Config
module Report = Taqp_core.Report
module Taqp = Taqp_core.Taqp
module Staged = Taqp_core.Staged
module Count_estimator = Taqp_estimators.Count_estimator
module Paper_setup = Taqp_workload.Paper_setup
module Confidence = Taqp_stats.Confidence
module Clock = Taqp_storage.Clock
module Device = Taqp_storage.Device
module Io_stats = Taqp_storage.Io_stats
module Cost_params = Taqp_storage.Cost_params
module Sink = Taqp_obs.Sink
module Event = Taqp_obs.Event
module Json = Taqp_obs.Json

let checkb = Fixtures.checkb
let checki = Fixtures.checki
let checkf = Fixtures.checkf
let checks = Alcotest.check Alcotest.string

(* ------------------------------------------------------------------ *)
(* Scenario DSL                                                        *)

let test_dsl_presets () =
  List.iter
    (fun name ->
      match Fault_plan.of_string name with
      | Ok plan ->
          checkb (name ^ " parses to its preset") true
            (Some plan = Fault_plan.preset name)
      | Error m -> Alcotest.failf "preset %s failed to parse: %s" name m)
    Fault_plan.preset_names

let test_dsl_rules () =
  match
    Fault_plan.of_string
      "read_error:p=0.05; latency:p=0.1,factor=4,op=sort,after=2,until=9; \
       stall:p=0.01,dur=0.5,max=3; retries=5; backoff=0.02; backoff_mult=3"
  with
  | Error m -> Alcotest.failf "DSL did not parse: %s" m
  | Ok plan ->
      checki "three rules" 3 (List.length plan.Fault_plan.rules);
      checki "retries" 5 plan.Fault_plan.max_retries;
      checkf "backoff" 0.02 plan.Fault_plan.backoff;
      checkf "backoff multiplier" 3.0 plan.Fault_plan.backoff_multiplier;
      let r1 = List.nth plan.Fault_plan.rules 0 in
      checkb "read_error defaults to read_block" true
        (r1.Fault_plan.op = Some "read_block");
      let r2 = List.nth plan.Fault_plan.rules 1 in
      checkb "latency op honored" true (r2.Fault_plan.op = Some "sort");
      checkf "window start" 2.0 r2.Fault_plan.after;
      checkf "window end" 9.0 r2.Fault_plan.until;
      let r3 = List.nth plan.Fault_plan.rules 2 in
      checki "firing budget" 3 r3.Fault_plan.max_faults;
      checkb "stall duration" true (r3.Fault_plan.kind = Fault_plan.Stall 0.5)

let test_dsl_errors () =
  let bad s =
    match Fault_plan.of_string s with Ok _ -> false | Error _ -> true
  in
  checkb "unknown kind" true (bad "bogus:p=0.1");
  checkb "probability out of range" true (bad "read_error:p=2");
  checkb "missing probability" true (bad "read_error:factor=2");
  checkb "empty scenario" true (bad "");
  checkb "empty window" true (bad "read_error:p=0.1,after=5,until=5");
  checkb "plan clause only" true (bad "retries=3")

let test_expected_load () =
  checkf "none has zero load" 0.0 (Fault_plan.expected_load Fault_plan.none);
  let latency = Option.get (Fault_plan.preset "latency") in
  (* p=0.05 of a 4x spike: 0.05 * 3 extra *)
  Fixtures.checkf_eps 1e-9 "latency preset load" 0.15
    (Fault_plan.expected_load latency);
  let heavier =
    Fault_plan.make [ Fault_plan.rule ~probability:0.2 (Fault_plan.Latency_spike 4.0) ]
  in
  checkb "load monotone in probability" true
    (Fault_plan.expected_load heavier > Fault_plan.expected_load latency)

(* ------------------------------------------------------------------ *)
(* Injector determinism                                                *)

let coin_plan =
  Fault_plan.make
    [ Fault_plan.rule ~op:"read_block" ~probability:0.5 Fault_plan.Read_error ]

let draws inj ~ops =
  List.map (fun op -> Injector.draw inj ~op ~now:0.0) ops

let test_same_seed_same_faults () =
  let ops = List.init 200 (fun _ -> "read_block") in
  let a = draws (Injector.create ~seed:11 coin_plan) ~ops in
  let b = draws (Injector.create ~seed:11 coin_plan) ~ops in
  checkb "identical fault sequences" true (a = b);
  checkb "some faults fired" true (List.exists Option.is_some a);
  checkb "some draws clean" true (List.exists Option.is_none a)

let test_non_matching_ops_consume_no_randomness () =
  (* Interleaving charges the rules don't match must not shift the
     fault pattern seen by the ops they do match. *)
  let pure = List.init 100 (fun _ -> "read_block") in
  let noisy =
    List.concat_map (fun op -> [ "sort"; op; "check_tuples" ]) pure
  in
  let a = draws (Injector.create ~seed:3 coin_plan) ~ops:pure in
  let b =
    draws (Injector.create ~seed:3 coin_plan) ~ops:noisy
    |> List.filteri (fun i _ -> i mod 3 = 1)
  in
  checkb "interleaving is invisible" true (a = b)

let test_window_and_budget () =
  let plan =
    Fault_plan.make
      [
        Fault_plan.rule ~op:"read_block" ~probability:1.0 ~after:1.0 ~until:2.0
          ~max_faults:2 Fault_plan.Read_error;
      ]
  in
  let inj = Injector.create ~seed:1 plan in
  checkb "before the window" true
    (Injector.draw inj ~op:"read_block" ~now:0.5 = None);
  checkb "inside fires" true
    (Injector.draw inj ~op:"read_block" ~now:1.1 <> None);
  checkb "budget second" true
    (Injector.draw inj ~op:"read_block" ~now:1.2 <> None);
  checkb "budget exhausted" true
    (Injector.draw inj ~op:"read_block" ~now:1.3 = None);
  checkb "after the window" true
    (Injector.draw inj ~op:"read_block" ~now:2.5 = None)

(* ------------------------------------------------------------------ *)
(* Device-level fault semantics                                        *)

let block_cost = Cost_params.default.Cost_params.block_read

let one_shot ?(probability = 1.0) ?op kind =
  Fault_plan.make [ Fault_plan.rule ?op ~probability ~max_faults:1 kind ]

let test_latency_spike_inflates_charge () =
  let clock, device =
    Fixtures.quiet_device
      ~faults:(Injector.create ~seed:1 (one_shot (Fault_plan.Latency_spike 3.0)))
      ()
  in
  Device.read_block device;
  checkf "charge tripled" (3.0 *. block_cost) (Clock.now clock);
  checkf "excess attributed to the fault" (2.0 *. block_cost)
    (Device.fault_time device);
  checki "one logical read" 1 (Io_stats.blocks_read (Device.stats device));
  checki "no retries" 0 (Io_stats.retries (Device.stats device))

let test_stall_adds_dead_time () =
  let clock, device =
    Fixtures.quiet_device
      ~faults:(Injector.create ~seed:1 (one_shot (Fault_plan.Stall 0.5)))
      ()
  in
  Device.read_block device;
  checkf "charge plus stall" (block_cost +. 0.5) (Clock.now clock);
  checkf "stall is fault time" 0.5 (Device.fault_time device)

let test_read_error_retries_with_backoff () =
  let plan =
    Fault_plan.make ~backoff:0.01 ~backoff_multiplier:2.0
      [
        Fault_plan.rule ~probability:1.0 ~max_faults:2 Fault_plan.Read_error;
      ]
  in
  let clock, device =
    Fixtures.quiet_device ~faults:(Injector.create ~seed:1 plan) ()
  in
  Device.read_block device;
  (* two failed attempts, then a clean third: three reads plus
     backoffs 0.01 and 0.02 *)
  checkf "retries and backoff charged" ((3.0 *. block_cost) +. 0.03)
    (Clock.now clock);
  checki "logical reads counted once" 1
    (Io_stats.blocks_read (Device.stats device));
  checki "two retries" 2 (Io_stats.retries (Device.stats device));
  let log = Device.fault_log device in
  checki "two fault events" 2 (List.length log);
  checkb "both recovered" true
    (List.for_all (fun e -> e.Injector.ev_recovered) log)

let test_escalation_to_unrecoverable () =
  let plan =
    Fault_plan.make ~max_retries:2
      [ Fault_plan.rule ~probability:1.0 Fault_plan.Torn_block ]
  in
  let _, device =
    Fixtures.quiet_device ~faults:(Injector.create ~seed:1 plan) ()
  in
  match Device.read_block device with
  | () -> Alcotest.fail "expected Unrecoverable"
  | exception Injector.Unrecoverable { op; attempts; _ } ->
      checks "op" "read_block" op;
      checki "retry budget spent" 3 attempts;
      let log = Device.fault_log device in
      checki "every attempt logged" 3 (List.length log);
      checkb "final event unrecovered" true
        (not (List.nth log 2).Injector.ev_recovered)

(* ------------------------------------------------------------------ *)
(* Property: Fault_plan.none is bit-identical to no fault layer        *)

let wl = Paper_setup.selection ~spec:(Fixtures.spec ~n_tuples:500 ()) ~seed:5 ()

let run_traced ?faults ?fault_seed ~seed () =
  let sink, events = Sink.memory () in
  let r =
    Taqp.count_within ~config:Fixtures.observe_config ~seed ~sink ?faults
      ?fault_seed wl.Paper_setup.catalog ~quota:1.5 wl.Paper_setup.query
  in
  (r, List.map (fun e -> Json.to_string (Event.to_json e)) (events ()))

let report_fingerprint (r : Report.t) =
  Fmt.str "%a|%.17g|%.17g|%.17g|%.17g|%d|%a" Report.pp r r.Report.estimate
    r.Report.variance r.Report.confidence.Confidence.half_width
    r.Report.elapsed
    (List.length r.Report.trace)
    Io_stats.pp r.Report.io

let test_none_plan_bit_identity () =
  for seed = 1 to 5 do
    let bare, bare_tr = run_traced ~seed () in
    let none, none_tr = run_traced ~faults:Fault_plan.none ~fault_seed:99 ~seed () in
    checks "report identical"
      (report_fingerprint bare) (report_fingerprint none);
    checki "same trace length" (List.length bare_tr) (List.length none_tr);
    List.iter2 (checks "trace event identical") bare_tr none_tr;
    checkb "no fault log" true (none.Report.faults = [])
  done

let test_same_fault_seed_identical_run () =
  let plan = Option.get (Fault_plan.preset "heavy") in
  let a, a_tr = run_traced ~faults:plan ~fault_seed:7 ~seed:3 () in
  let b, b_tr = run_traced ~faults:plan ~fault_seed:7 ~seed:3 () in
  checks "reports identical" (report_fingerprint a) (report_fingerprint b);
  checkb "fault logs identical" true (a.Report.faults = b.Report.faults);
  checki "same trace length" (List.length a_tr) (List.length b_tr);
  List.iter2 (checks "trace event identical") a_tr b_tr;
  checkb "faults actually fired" true (a.Report.faults <> [])

let test_recoverable_faults_never_touch_estimator () =
  (* Same sampling seed, fixed per-stage fractions: a run under purely
     recoverable chaos must produce exactly the per-stage estimates of
     the fault-free run — faults cost clock time, never tuples. *)
  let wl = Paper_setup.join ~spec:(Fixtures.spec ()) ~target_output:2000 ~seed:3 () in
  let plan =
    Fault_plan.make
      [
        Fault_plan.rule ~probability:0.3 Fault_plan.Read_error;
        Fault_plan.rule ~probability:0.2 (Fault_plan.Latency_spike 4.0);
        Fault_plan.rule ~probability:0.05 (Fault_plan.Stall 0.1);
      ]
  in
  let stages = 4 and f = 0.05 in
  let clean, clean_t =
    Fixtures.run_fixed_stages ~physical:Config.Sort_merge ~stages ~f wl
  in
  let chaotic, chaotic_t =
    Fixtures.run_fixed_stages
      ~faults:(Injector.create ~seed:13 plan)
      ~physical:Config.Sort_merge ~stages ~f wl
  in
  checki "same stage count" (List.length clean) (List.length chaotic);
  List.iter2
    (fun (a : Staged.stage_result) (b : Staged.stage_result) ->
      let ea = a.Staged.estimate and eb = b.Staged.estimate in
      checkf "estimate untouched" ea.Count_estimator.estimate
        eb.Count_estimator.estimate;
      checkf "variance untouched" ea.Count_estimator.variance
        eb.Count_estimator.variance;
      checkf "hits untouched" ea.Count_estimator.hits eb.Count_estimator.hits;
      checkf "points untouched" ea.Count_estimator.points
        eb.Count_estimator.points)
    clean chaotic;
  checkb "chaos cost clock time" true (chaotic_t > clean_t)

(* ------------------------------------------------------------------ *)
(* Executor degradation                                                *)

let test_unrecoverable_yields_degraded_report () =
  let plan = Option.get (Fault_plan.preset "unrecoverable") in
  for seed = 1 to 5 do
    let r =
      Taqp.count_within ~config:Fixtures.observe_config ~seed ~faults:plan
        wl.Paper_setup.catalog ~quota:2.0 wl.Paper_setup.query
    in
    checkb "outcome faulted" true (r.Report.outcome = Report.Faulted);
    checkb "degraded flagged" true r.Report.degraded;
    checkb "stage aborted" true r.Report.stage_aborted;
    checkb "estimate finite" true (Float.is_finite r.Report.estimate);
    checkb "half-width finite" true
      (Float.is_finite r.Report.confidence.Confidence.half_width);
    checkb "fault log carried" true (r.Report.faults <> []);
    checkb "last fault unrecovered" true
      (not
         (List.nth r.Report.faults (List.length r.Report.faults - 1))
           .Injector.ev_recovered);
    checkb "fault time accounted" true (r.Report.fault_time > 0.0)
  done

let test_degraded_ci_widening_bounds () =
  (* The degradation factor is 1 + min(1, unused/quota): the degraded
     half-width sits between the nominal sampling interval and twice
     it. Faults start only after 0.5s so the first stage completes and
     the estimate is non-degenerate, but the second stage's reads hit
     the certain read error and escalate. *)
  let plan =
    Fault_plan.make
      [ Fault_plan.rule ~probability:1.0 ~after:0.5 Fault_plan.Read_error ]
  in
  let r =
    Taqp.count_within ~config:Fixtures.observe_config ~seed:2 ~faults:plan
      wl.Paper_setup.catalog ~quota:2.0 wl.Paper_setup.query
  in
  checkb "degraded" true r.Report.degraded;
  checkb "completed stages first" true (r.Report.stages_completed >= 1);
  let base =
    (Confidence.normal ~mean:r.Report.estimate ~variance:r.Report.variance
       ~level:0.95)
      .Confidence.half_width
  in
  let hw = r.Report.confidence.Confidence.half_width in
  checkb "widened at least to nominal" true (hw >= base -. 1e-12);
  checkb "widened at most 2x" true (hw <= (2.0 *. base) +. 1e-12)

(* The widening factor itself, pure ({!Report.widening_factor}). Edge
   cases first, then monotonicity as a qcheck property: for a fixed
   quota, less useful time can never narrow the interval. *)
let test_widening_factor_edges () =
  checkf "zero unused quota -> no widening" 1.0
    (Report.widening_factor ~quota:2.0 ~useful_time:2.0);
  checkf "overspent useful time clamps to 1" 1.0
    (Report.widening_factor ~quota:2.0 ~useful_time:3.5);
  checkf "full quota unused -> doubled" 2.0
    (Report.widening_factor ~quota:2.0 ~useful_time:0.0);
  checkf "negative useful time clamps to 2" 2.0
    (Report.widening_factor ~quota:2.0 ~useful_time:(-1.0));
  checkf "zero quota -> worst case" 2.0
    (Report.widening_factor ~quota:0.0 ~useful_time:0.0);
  checkf "negative quota -> worst case" 2.0
    (Report.widening_factor ~quota:(-1.0) ~useful_time:0.5);
  checkf "half the quota useful" 1.5
    (Report.widening_factor ~quota:2.0 ~useful_time:1.0)

let widening_monotone =
  QCheck.Test.make ~count:500 ~name:"widening factor monotone in lost quota"
    QCheck.(triple (float_bound_exclusive 100.0) pos_float pos_float)
    (fun (quota, u1, u2) ->
      let quota = quota +. 1e-6 in
      let lo = Float.min u1 u2 and hi = Float.max u1 u2 in
      let f_lo = Report.widening_factor ~quota ~useful_time:lo
      and f_hi = Report.widening_factor ~quota ~useful_time:hi in
      f_lo >= f_hi && f_lo >= 1.0 && f_lo <= 2.0 && f_hi >= 1.0 && f_hi <= 2.0)

(* Faulted-plus-aborted: a run whose last stage was both cut by the
   hard deadline and ended by an unrecoverable fault is degraded
   once — the factor depends only on quota and useful time, so the
   combined report still obeys the [nominal, 2 x nominal] envelope. *)
let test_widening_faulted_plus_aborted () =
  let plan =
    Fault_plan.make
      [ Fault_plan.rule ~probability:1.0 ~after:0.5 Fault_plan.Read_error ]
  in
  let config = { Fixtures.observe_config with Config.stopping = Taqp_timecontrol.Stopping.Hard_deadline } in
  let r =
    Taqp.count_within ~config ~seed:2 ~faults:plan wl.Paper_setup.catalog
      ~quota:2.0 wl.Paper_setup.query
  in
  checkb "degraded" true r.Report.degraded;
  checkb "ended by deadline or fault" true
    (match r.Report.outcome with
    | Report.Faulted | Report.Aborted_mid_stage -> true
    | _ -> false);
  let base =
    (Confidence.normal ~mean:r.Report.estimate ~variance:r.Report.variance
       ~level:0.95)
      .Confidence.half_width
  in
  let hw = r.Report.confidence.Confidence.half_width in
  checkb "widened at least to nominal" true (hw >= base -. 1e-12);
  checkb "widened at most 2x (never compounded)" true
    (hw <= (2.0 *. base) +. 1e-12)

let () =
  Alcotest.run "fault"
    [
      ( "plan",
        [
          Alcotest.test_case "presets parse" `Quick test_dsl_presets;
          Alcotest.test_case "DSL rules" `Quick test_dsl_rules;
          Alcotest.test_case "DSL errors" `Quick test_dsl_errors;
          Alcotest.test_case "expected load" `Quick test_expected_load;
        ] );
      ( "injector",
        [
          Alcotest.test_case "same seed, same faults" `Quick
            test_same_seed_same_faults;
          Alcotest.test_case "non-matching ops draw nothing" `Quick
            test_non_matching_ops_consume_no_randomness;
          Alcotest.test_case "window and budget" `Quick test_window_and_budget;
        ] );
      ( "device",
        [
          Alcotest.test_case "latency spike inflates" `Quick
            test_latency_spike_inflates_charge;
          Alcotest.test_case "stall adds dead time" `Quick
            test_stall_adds_dead_time;
          Alcotest.test_case "retry with backoff" `Quick
            test_read_error_retries_with_backoff;
          Alcotest.test_case "escalation" `Quick
            test_escalation_to_unrecoverable;
        ] );
      ( "properties",
        [
          Alcotest.test_case "none-plan bit identity" `Quick
            test_none_plan_bit_identity;
          Alcotest.test_case "fault seed replay" `Quick
            test_same_fault_seed_identical_run;
          Alcotest.test_case "estimator untouched by recovery" `Quick
            test_recoverable_faults_never_touch_estimator;
        ] );
      ( "degradation",
        [
          Alcotest.test_case "well-formed partial report" `Quick
            test_unrecoverable_yields_degraded_report;
          Alcotest.test_case "CI widening bounds" `Quick
            test_degraded_ci_widening_bounds;
          Alcotest.test_case "widening factor edges" `Quick
            test_widening_factor_edges;
          QCheck_alcotest.to_alcotest widening_monotone;
          Alcotest.test_case "faulted plus aborted widens once" `Quick
            test_widening_faulted_plus_aborted;
        ] );
    ]
