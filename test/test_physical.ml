(* The hash evaluation path: algebraic equivalence to the sort-merge
   operators (property tests against a nested-loop oracle), estimator
   bit-identity across physical paths at fixed stage fractions, and the
   late-stage cost advantage that motivates the path. *)

open Taqp_data
open Taqp_relational
module Config = Taqp_core.Config
module Staged = Taqp_core.Staged
module Paper_setup = Taqp_workload.Paper_setup
module Cost_model = Taqp_timecost.Cost_model
module Count_estimator = Taqp_estimators.Count_estimator

(* Check helpers, workload specs and the fixed-stage driver live in
   the shared Fixtures module. *)
let checkb = Fixtures.checkb
let checki = Fixtures.checki
let checkf = Fixtures.checkf

(* ------------------------------------------------------------------ *)
(* Operator-level equivalence                                          *)

let mk2 a b = Tuple.of_list [ Value.Int a; Value.Int b ]

(* Multiset equality: full-tuple sort, then pointwise comparison. *)
let canon tuples = List.sort Tuple.compare tuples

let multiset_equal l1 l2 =
  List.length l1 = List.length l2
  && List.for_all2 (fun a b -> Tuple.compare a b = 0) (canon l1) (canon l2)

(* Small domains force hash-bucket collisions and duplicate keys. *)
let pairs_gen =
  QCheck.(list_of_size Gen.(0 -- 40) (pair (int_bound 4) (int_bound 3)))

let tuples_of pairs = Array.of_list (List.map (fun (a, b) -> mk2 a b) pairs)

let nested_loop_join left right =
  Array.to_list left
  |> List.concat_map (fun l ->
         Array.to_list right
         |> List.filter_map (fun r ->
                if Value.compare (Tuple.get l 0) (Tuple.get r 0) = 0 then
                  Some (Tuple.concat l r)
                else None))

let merge_join left right =
  let key = [| 0 |] in
  let sl = Array.copy left and sr = Array.copy right in
  Array.sort (Ops.compare_with_key key) sl;
  Array.sort (Ops.compare_with_key key) sr;
  Ops.merge_sorted_join ~key_l:key ~key_r:key
    ~residual:(fun _ -> true)
    ~residual_comparisons:0 sl sr

let hash_join left right =
  let index = Ops.Hash_index.create ~key:[| 0 |] in
  Ops.Hash_index.add index right;
  Ops.hash_probe_join ~index ~probe_key:[| 0 |] ~indexed_side:`Right
    ~residual:(fun _ -> true)
    ~residual_comparisons:0 left

let prop_join_paths_agree =
  QCheck.Test.make ~name:"hash join = merge join = nested loop" ~count:200
    QCheck.(pair pairs_gen pairs_gen)
    (fun (lp, rp) ->
      let left = tuples_of lp and right = tuples_of rp in
      let oracle = nested_loop_join left right in
      multiset_equal oracle (merge_join left right)
      && multiset_equal oracle (hash_join left right))

let nested_loop_intersect left right =
  Array.to_list left
  |> List.concat_map (fun l ->
         Array.to_list right
         |> List.filter_map (fun r ->
                if Tuple.compare l r = 0 then Some l else None))

let merge_intersect left right =
  let sl = Array.copy left and sr = Array.copy right in
  Array.sort Tuple.compare sl;
  Array.sort Tuple.compare sr;
  Ops.merge_sorted_intersect sl sr

let hash_intersect left right =
  let index = Ops.Hash_index.create ~key:[| 0; 1 |] in
  Ops.Hash_index.add index right;
  Ops.hash_probe_intersect ~index ~emit_side:`Probe left

let prop_intersect_paths_agree =
  QCheck.Test.make ~name:"hash intersect = merge intersect = nested loop"
    ~count:200
    QCheck.(pair pairs_gen pairs_gen)
    (fun (lp, rp) ->
      let left = tuples_of lp and right = tuples_of rp in
      let oracle = nested_loop_intersect left right in
      multiset_equal oracle (merge_intersect left right)
      && multiset_equal oracle (hash_intersect left right))

(* The other probing direction: index the left side, emit it. *)
let test_hash_intersect_emit_indexed () =
  let left = tuples_of [ (1, 1); (1, 1); (2, 2) ] in
  let right = tuples_of [ (1, 1); (3, 3) ] in
  let index = Ops.Hash_index.create ~key:[| 0; 1 |] in
  Ops.Hash_index.add index left;
  let out = Ops.hash_probe_intersect ~index ~emit_side:`Indexed right in
  checkb "both left duplicates emitted" true
    (multiset_equal out (nested_loop_intersect left right))

let test_cross_type_numeric_keys () =
  (* Int 3 and Float 3.0 compare equal, so the sort-merge path matches
     them; the hash path must bucket them together too. *)
  let l = [| Tuple.of_list [ Value.Int 3; Value.Int 1 ] |] in
  let r = [| Tuple.of_list [ Value.Float 3.0; Value.Int 2 ] |] in
  let merged = merge_join l r in
  let hashed = hash_join l r in
  checki "merge matches across types" 1 (List.length merged);
  checki "hash matches across types" 1 (List.length hashed);
  checkb "same output" true (multiset_equal merged hashed)

let prop_key_comparator_same_order =
  (* The precompiled comparator realizes exactly the compare_with_key
     total order (key positions, then all fields). *)
  let tuple_gen =
    QCheck.Gen.(
      map
        (fun (a, b, c) -> Tuple.of_list [ Value.Int a; Value.Int b; Value.Int c ])
        (triple (int_bound 3) (int_bound 3) (int_bound 3)))
  in
  let key_gen = QCheck.Gen.oneofl [ [| 0 |]; [| 2 |]; [| 1; 0 |]; [| 2; 1 |]; [||] ] in
  QCheck.Test.make ~name:"key_comparator = compare_with_key" ~count:500
    (QCheck.make QCheck.Gen.(triple key_gen tuple_gen tuple_gen))
    (fun (key, t1, t2) ->
      let sign x = compare x 0 in
      sign (Ops.key_comparator ~arity:3 key t1 t2)
      = sign (Ops.compare_with_key key t1 t2))

(* ------------------------------------------------------------------ *)
(* Staged bit-identity across physical paths                           *)

let run_fixed_stages ~physical ~stages ~f wl =
  Fixtures.run_fixed_stages ~physical ~stages ~f wl

let check_bit_identical name (wl : Paper_setup.t) =
  let stages = 4 and f = 0.05 in
  let sort_r, _ = run_fixed_stages ~physical:Config.Sort_merge ~stages ~f wl in
  let hash_r, _ = run_fixed_stages ~physical:Config.Hash ~stages ~f wl in
  let adapt_r, _ = run_fixed_stages ~physical:Config.Adaptive ~stages ~f wl in
  checki (name ^ ": same stage count (hash)") (List.length sort_r)
    (List.length hash_r);
  checki (name ^ ": same stage count (adaptive)") (List.length sort_r)
    (List.length adapt_r);
  List.iter
    (fun other_r ->
      List.iter2
        (fun (a : Staged.stage_result) (b : Staged.stage_result) ->
          let ea = a.Staged.estimate and eb = b.Staged.estimate in
          checkf (name ^ ": estimate") ea.Count_estimator.estimate
            eb.Count_estimator.estimate;
          checkf (name ^ ": variance") ea.Count_estimator.variance
            eb.Count_estimator.variance;
          checkf (name ^ ": hits") ea.Count_estimator.hits
            eb.Count_estimator.hits;
          checkf (name ^ ": points") ea.Count_estimator.points
            eb.Count_estimator.points;
          checkf (name ^ ": total points") ea.Count_estimator.total_points
            eb.Count_estimator.total_points;
          let ca = Count_estimator.confidence ~level:0.95 ea in
          let cb = Count_estimator.confidence ~level:0.95 eb in
          checkf (name ^ ": ci center") ca.Taqp_stats.Confidence.center
            cb.Taqp_stats.Confidence.center;
          checkf (name ^ ": ci half-width") ca.Taqp_stats.Confidence.half_width
            cb.Taqp_stats.Confidence.half_width)
        sort_r other_r)
    [ hash_r; adapt_r ]

let bit_identity_workloads () =
  let spec = Fixtures.spec () in
  [
    ("join", Paper_setup.join ~spec ~target_output:2000 ~seed:3 ());
    ("intersection", Paper_setup.intersection ~spec ~overlap:150 ~seed:4 ());
    ("three-way join", Paper_setup.three_way_join ~spec ~group_size:3 ~seed:5 ());
  ]

let test_estimates_bit_identical () =
  List.iter (fun (name, wl) -> check_bit_identical name wl)
    (bit_identity_workloads ())

let test_partial_fulfillment_bit_identical () =
  let wl = Paper_setup.join ~spec:(Fixtures.spec ()) ~target_output:2000 ~seed:3 () in
  let partial_plan =
    { Taqp_sampling.Plan.default with Taqp_sampling.Plan.fulfillment = Taqp_sampling.Plan.Partial }
  in
  let run physical =
    let config = { Config.default with Config.physical; plan = partial_plan } in
    let staged = Fixtures.compile ~config wl in
    let _, device = Fixtures.quiet_device () in
    let rs = ref [] in
    for _ = 1 to 3 do
      match Staged.run_stage staged ~device ~f:0.05 with
      | Some r -> rs := r.Staged.estimate :: !rs
      | None -> ()
    done;
    List.rev !rs
  in
  let s = run Config.Sort_merge and h = run Config.Hash in
  checki "same stage count" (List.length s) (List.length h);
  List.iter2
    (fun (a : Count_estimator.t) (b : Count_estimator.t) ->
      checkf "partial estimate" a.Count_estimator.estimate
        b.Count_estimator.estimate;
      checkf "partial variance" a.Count_estimator.variance
        b.Count_estimator.variance)
    s h

(* ------------------------------------------------------------------ *)
(* The cost advantage                                                  *)

let test_hash_cheaper_at_late_stages () =
  (* The point of the path: at >= 3 full-fulfillment stages of a
     multi-join, the sort path re-merges every old file pair while the
     hash path touches only the deltas — the cumulative operator-time
     ratio must be at least 2x. *)
  let spec = Fixtures.spec ~n_tuples:600 () in
  let wl = Paper_setup.three_way_join ~spec ~group_size:3 ~seed:5 () in
  let stages = 4 and f = 0.05 in
  let nodes_cost results =
    List.fold_left (fun acc r -> acc +. r.Staged.nodes_elapsed) 0.0 results
  in
  let sort_r, _ = run_fixed_stages ~physical:Config.Sort_merge ~stages ~f wl in
  let hash_r, _ = run_fixed_stages ~physical:Config.Hash ~stages ~f wl in
  let adapt_r, _ = run_fixed_stages ~physical:Config.Adaptive ~stages ~f wl in
  checki "ran enough stages" stages (List.length sort_r);
  let cs = nodes_cost sort_r and ch = nodes_cost hash_r in
  let ca = nodes_cost adapt_r in
  checkb
    (Printf.sprintf "hash at least 2x cheaper (sort %.4f vs hash %.4f)" cs ch)
    true
    (cs >= 2.0 *. ch);
  checkb
    (Printf.sprintf "adaptive at least 2x cheaper (sort %.4f vs adaptive %.4f)"
       cs ca)
    true
    (cs >= 2.0 *. ca)

let test_adaptive_within_envelope () =
  let wl = Paper_setup.join ~spec:(Fixtures.spec ()) ~target_output:2000 ~seed:3 () in
  let stages = 4 and f = 0.06 in
  let _, sort_cost = run_fixed_stages ~physical:Config.Sort_merge ~stages ~f wl in
  let _, hash_cost = run_fixed_stages ~physical:Config.Hash ~stages ~f wl in
  let _, adapt_cost = run_fixed_stages ~physical:Config.Adaptive ~stages ~f wl in
  (* Adaptive never does worse than the worse pure path, with slack for
     one switch's catch-up work. *)
  checkb "adaptive within the pure paths' envelope" true
    (adapt_cost <= Float.max sort_cost hash_cost *. 1.25)

module Formulas = Taqp_timecost.Formulas
module Io_stats = Taqp_storage.Io_stats

let test_forced_switch_catch_up () =
  (* Teach the hash path's cost node an artificially high per-tuple
     cost so adaptive selection starts on the sort path; as stages
     accumulate the sort path's re-merging grows past it and the
     operator switches to hash mid-run. The switch must exercise the
     index catch-up and leave every per-stage estimate bit-identical to
     a pure sort-merge run. *)
  let wl = Paper_setup.join ~spec:(Fixtures.spec ()) ~target_output:2000 ~seed:3 () in
  let stages = 6 and f = 0.08 in
  let run ~physical ~bias =
    let config = { Config.default with Config.physical } in
    let cm = Cost_model.create () in
    let staged =
      Staged.compile ~catalog:wl.catalog ~config ~rng:(Fixtures.Prng.create 7)
        ~cost_model:cm wl.query
    in
    if bias then
      List.iter
        (fun id ->
          if Cost_model.kind cm ~id = Formulas.Hash_join then
            for _ = 1 to 8 do
              Cost_model.observe_step cm ~id ~step:Formulas.Step_hash_build
                { Formulas.zero_measures with Formulas.build_tuples = 100.0 }
                ~seconds:0.3;
              Cost_model.observe_step cm ~id ~step:Formulas.Step_hash_probe
                { Formulas.zero_measures with Formulas.probe_tuples = 100.0 }
                ~seconds:0.3
            done)
        (Cost_model.ids cm);
    let _, device = Fixtures.quiet_device () in
    let rs = ref [] in
    for _ = 1 to stages do
      match Staged.run_stage staged ~device ~f with
      | Some r -> rs := r.Staged.estimate :: !rs
      | None -> ()
    done;
    (List.rev !rs, Fixtures.Device.stats device)
  in
  let adaptive_r, stats = run ~physical:Config.Adaptive ~bias:true in
  let sort_r, _ = run ~physical:Config.Sort_merge ~bias:false in
  checkb "sort path ran first" true (Io_stats.tuples_sorted stats > 0);
  checkb "then switched to hash" true (Io_stats.tuples_hashed stats > 0);
  checki "same stage count" (List.length sort_r) (List.length adaptive_r);
  List.iter2
    (fun (a : Count_estimator.t) (b : Count_estimator.t) ->
      checkf "estimate across switch" a.Count_estimator.estimate
        b.Count_estimator.estimate;
      checkf "variance across switch" a.Count_estimator.variance
        b.Count_estimator.variance)
    sort_r adaptive_r

let () =
  Alcotest.run "physical"
    [
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest prop_join_paths_agree;
          QCheck_alcotest.to_alcotest prop_intersect_paths_agree;
          Alcotest.test_case "intersect emit indexed" `Quick
            test_hash_intersect_emit_indexed;
          Alcotest.test_case "cross-type numeric keys" `Quick
            test_cross_type_numeric_keys;
          QCheck_alcotest.to_alcotest prop_key_comparator_same_order;
        ] );
      ( "estimator-identity",
        [
          Alcotest.test_case "bit-identical estimates" `Quick
            test_estimates_bit_identical;
          Alcotest.test_case "partial fulfillment" `Quick
            test_partial_fulfillment_bit_identical;
        ] );
      ( "cost",
        [
          Alcotest.test_case "hash cheaper at late stages" `Quick
            test_hash_cheaper_at_late_stages;
          Alcotest.test_case "adaptive stays in envelope" `Quick
            test_adaptive_within_envelope;
          Alcotest.test_case "forced switch catch-up" `Quick
            test_forced_switch_catch_up;
        ] );
    ]
