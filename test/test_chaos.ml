(* Statistical regression tests for time control under storage chaos:
   the overspend probability each strategy claims must survive fault
   injection, hard deadlines must hold exactly, and stage admission
   (Stopping.allows_stage) must never let through a stage the
   remaining quota cannot afford — including the zero-quota and
   quota-below-minimum-stage edges.

   The fault seed comes from TAQP_FAULT_SEED (default 42) so the CI
   chaos matrix can sweep seeds without touching the code. *)

module Fault_plan = Taqp_fault.Fault_plan
module Config = Taqp_core.Config
module Report = Taqp_core.Report
module Taqp = Taqp_core.Taqp
module Stopping = Taqp_timecontrol.Stopping
module Strategy = Taqp_timecontrol.Strategy
module Paper_setup = Taqp_workload.Paper_setup

let checkb = Fixtures.checkb
let checki = Fixtures.checki

let fault_seed =
  match Sys.getenv_opt "TAQP_FAULT_SEED" with
  | Some s -> (
      match int_of_string_opt s with
      | Some n -> n
      | None -> Alcotest.failf "TAQP_FAULT_SEED not an integer: %S" s)
  | None -> 42

let wl = Paper_setup.selection ~spec:(Fixtures.spec ~n_tuples:2_000 ~tuple_bytes:200 ()) ~seed:3 ()
let quota = 1.0

(* ------------------------------------------------------------------ *)
(* Overspend probability under chaos (observe mode)                    *)

(* Bounds mirror BENCH_chaos.json's claimed risk bounds, with slack
   for the 40-trial sample size so a legitimate seed sweep does not
   flake: measured probabilities sit well under half the bound. *)
let scenarios = [ ("transient", 0.15); ("latency", 0.25); ("heavy", 0.15) ]
let trials = 40

let run_observe ~plan ~seed =
  let config =
    {
      Fixtures.observe_config with
      Config.strategy = Strategy.one_at_a_time ~d_beta:24.0 ();
    }
  in
  Taqp.count_within ~config ~seed ~faults:plan ~fault_seed:(fault_seed + seed)
    wl.Paper_setup.catalog ~quota wl.Paper_setup.query

let test_overspend_within_risk_bound () =
  List.iter
    (fun (scenario, bound) ->
      let plan = Option.get (Fault_plan.preset scenario) in
      let overspends = ref 0 in
      for seed = 1 to trials do
        match run_observe ~plan ~seed with
        | exception e ->
            Alcotest.failf "%s: run raised %s" scenario (Printexc.to_string e)
        | r -> if r.Report.outcome = Report.Overspent then incr overspends
      done;
      let p = float_of_int !overspends /. float_of_int trials in
      checkb
        (Printf.sprintf "%s: overspend %.1f%% within bound %.0f%%" scenario
           (100.0 *. p) (100.0 *. bound))
        true (p <= bound))
    scenarios

(* ------------------------------------------------------------------ *)
(* Hard deadlines hold exactly under chaos                             *)

let test_hard_deadline_holds_under_chaos () =
  let plan = Option.get (Fault_plan.preset "heavy") in
  let config =
    {
      Config.default with
      Config.stopping = Stopping.Hard_deadline;
      trace = true;
    }
  in
  for seed = 1 to 20 do
    match
      Taqp.count_within ~config ~seed ~faults:plan
        ~fault_seed:(fault_seed + seed) wl.Paper_setup.catalog ~quota
        wl.Paper_setup.query
    with
    | exception e -> Alcotest.failf "run raised %s" (Printexc.to_string e)
    | r ->
        checkb "never past the deadline" true (r.Report.elapsed <= quota +. 1e-9);
        checkb "no overspend in abort mode" true (r.Report.overspend = 0.0);
        (* Every admitted stage passed allows_stage: its predicted end
           fit the quota at sizing time. *)
        List.iter
          (fun s ->
            checkb "admitted stage fit the quota" true
              (s.Report.started_at +. s.Report.predicted_cost <= quota +. 1e-9))
          r.Report.trace
  done

(* ------------------------------------------------------------------ *)
(* Stage admission edges                                               *)

let test_allows_stage_zero_quota () =
  checkb "zero-cost stage at zero quota" true
    (Stopping.allows_stage Stopping.Hard_deadline ~predicted_end:0.0 ~quota:0.0);
  checkb "any real stage rejected at zero quota" false
    (Stopping.allows_stage Stopping.Hard_deadline ~predicted_end:1e-9 ~quota:0.0);
  checkb "soft deadline with zero grace behaves like hard" false
    (Stopping.allows_stage
       (Stopping.Soft_deadline { grace = 0.0 })
       ~predicted_end:0.1 ~quota:0.0)

let test_allows_stage_quota_below_minimum_stage () =
  (* The minimum stage costs more than the whole quota: every
     deadline-bearing criterion must reject it. *)
  let min_stage = 0.5 and quota = 0.2 in
  checkb "hard rejects" false
    (Stopping.allows_stage Stopping.Hard_deadline ~predicted_end:min_stage ~quota);
  checkb "all-of rejects if any member rejects" false
    (Stopping.allows_stage
       (Stopping.All [ Stopping.Max_stages 10; Stopping.Hard_deadline ])
       ~predicted_end:min_stage ~quota);
  checkb "non-deadline criteria admit (deadline enforced elsewhere)" true
    (Stopping.allows_stage (Stopping.Max_stages 10) ~predicted_end:min_stage
       ~quota)

let stopping_gen =
  QCheck.Gen.(
    oneof
      [
        return Stopping.Hard_deadline;
        map (fun g -> Stopping.Soft_deadline { grace = g }) (float_bound_inclusive 0.5);
        map
          (fun g ->
            Stopping.All
              [ Stopping.Max_stages 5; Stopping.Soft_deadline { grace = g } ])
          (float_bound_inclusive 0.5);
        return (Stopping.All [ Stopping.Hard_deadline; Stopping.Max_stages 3 ]);
      ])

let prop_admitted_stages_are_affordable =
  (* Whenever a deadline-bearing criterion admits a stage, the stage's
     predicted end fits inside the quota plus the criterion's own
     grace. Includes quota = 0 and predicted_end > quota cases. *)
  QCheck.Test.make ~name:"allows_stage never admits an unaffordable stage"
    ~count:500
    (QCheck.make
       QCheck.Gen.(
         triple stopping_gen (float_bound_inclusive 2.0)
           (oneof [ return 0.0; float_bound_inclusive 1.0 ])))
    (fun (stopping, predicted_end, quota) ->
      let rec max_grace = function
        | Stopping.Hard_deadline -> Some 0.0
        | Stopping.Soft_deadline { grace } -> Some grace
        | Stopping.Error_bound _ | Stopping.Stagnation _ | Stopping.Max_stages _
          ->
            None
        | Stopping.All ts ->
            List.fold_left
              (fun acc t ->
                match (acc, max_grace t) with
                | None, g | g, None -> g
                | Some a, Some b -> Some (Float.min a b))
              None ts
      in
      match max_grace stopping with
      | None -> true (* no deadline: admission is unconstrained *)
      | Some grace ->
          (not (Stopping.allows_stage stopping ~predicted_end ~quota))
          || predicted_end <= quota *. (1.0 +. grace) +. 1e-12)

let test_tiny_quota_never_runs_a_stage () =
  (* A quota below even the planning cost: the run must end cleanly in
     Quota_exhausted with zero stages, not raise or loop. *)
  List.iter
    (fun quota ->
      let r =
        Taqp.count_within ~config:Fixtures.observe_config ~seed:1
          wl.Paper_setup.catalog ~quota wl.Paper_setup.query
      in
      checkb "quota exhausted" true
        (r.Report.outcome = Report.Quota_exhausted);
      checki "no stages" 0 r.Report.stages_completed;
      checkb "no overspend" true (r.Report.overspend = 0.0))
    [ 1e-6; 0.01 ]

let () =
  Alcotest.run "chaos"
    [
      ( "risk",
        [
          Alcotest.test_case "overspend within bound" `Slow
            test_overspend_within_risk_bound;
          Alcotest.test_case "hard deadline holds" `Quick
            test_hard_deadline_holds_under_chaos;
        ] );
      ( "admission",
        [
          Alcotest.test_case "zero quota" `Quick test_allows_stage_zero_quota;
          Alcotest.test_case "quota below minimum stage" `Quick
            test_allows_stage_quota_below_minimum_stage;
          QCheck_alcotest.to_alcotest prop_admitted_stages_are_affordable;
          Alcotest.test_case "tiny quota runs no stage" `Quick
            test_tiny_quota_never_runs_a_stage;
        ] );
    ]
