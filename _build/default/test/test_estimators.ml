open Taqp_data
open Taqp_relational
module Point_space = Taqp_estimators.Point_space
module Ie = Taqp_estimators.Inclusion_exclusion
module Count_estimator = Taqp_estimators.Count_estimator
module Goodman = Taqp_estimators.Goodman
module Selectivity = Taqp_estimators.Selectivity
module Catalog = Taqp_storage.Catalog
module Heap_file = Taqp_storage.Heap_file
module Prng = Taqp_rng.Prng
module Sample = Taqp_rng.Sample

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf eps = Alcotest.check (Alcotest.float eps)

(* ------------------------------------------------------------------ *)
(* Point space                                                         *)

let space =
  Point_space.make
    [
      { Point_space.name = "r1"; tuples = 100; blocks = 20; blocking_factor = 5 };
      { Point_space.name = "r2"; tuples = 60; blocks = 12; blocking_factor = 5 };
    ]

let test_point_space_sizes () =
  checkf 1e-9 "N" 6000.0 (Point_space.total_points space);
  checkf 1e-9 "B" 240.0 (Point_space.total_space_blocks space);
  checkf 1e-9 "points per block" 25.0 (Point_space.points_per_space_block space);
  checki "dims" 2 (Point_space.n_dims space)

let test_point_space_mapping () =
  (* Figure 2.2: every space block maps to a unique disk-block combo. *)
  for idx = 0 to 239 do
    let combo = Point_space.disk_blocks_of_space_block space idx in
    checki "roundtrip" idx (Point_space.space_block_of_disk_blocks space combo)
  done;
  Alcotest.check Alcotest.(list int) "first" [ 0; 0 ]
    (Point_space.disk_blocks_of_space_block space 0);
  Alcotest.check Alcotest.(list int) "last" [ 19; 11 ]
    (Point_space.disk_blocks_of_space_block space 239)

let test_point_space_errors () =
  checkb "empty" true
    (match Point_space.make [] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  checkb "rank mismatch" true
    (match Point_space.space_block_of_disk_blocks space [ 1 ] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  checkb "range" true
    (match Point_space.space_block_of_disk_blocks space [ 99; 0 ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Inclusion-exclusion                                                 *)

let schema_rs =
  Schema.make
    [ { Schema.name = "a"; ty = Value.Tint }; { Schema.name = "b"; ty = Value.Tint } ]

let file_of pairs =
  Heap_file.create ~block_bytes:64 ~tuple_bytes:16 ~schema:schema_rs
    (List.map (fun (a, b) -> Tuple.of_list [ Value.Int a; Value.Int b ]) pairs)

let sjip_only terms =
  List.for_all (fun (_, e) -> Ra.is_sjip e) terms

let test_ie_union () =
  let terms = Ie.rewrite (Ra.Union (Ra.relation "r", Ra.relation "s")) in
  checki "three terms" 3 (List.length terms);
  checkb "all sjip" true (sjip_only terms);
  checki "signs sum to 1" 1 (List.fold_left (fun acc (s, _) -> acc + s) 0 terms)

let test_ie_difference () =
  let terms = Ie.rewrite (Ra.Difference (Ra.relation "r", Ra.relation "s")) in
  checki "two terms" 2 (List.length terms);
  checki "signs" 0 (List.fold_left (fun acc (s, _) -> acc + s) 0 terms)

let test_ie_sjip_untouched () =
  let e = Ra.Select (Predicate.True, Ra.relation "r") in
  match Ie.rewrite e with
  | [ (1, e') ] -> checkb "unchanged" true (Ra.equal e e')
  | _ -> Alcotest.fail "expected a single positive term"

let test_ie_select_pushes_through () =
  let e =
    Ra.Select (Predicate.True, Ra.Union (Ra.relation "r", Ra.relation "s"))
  in
  let terms = Ie.rewrite e in
  checki "three terms" 3 (List.length terms);
  checkb "all sjip" true (sjip_only terms);
  (* the positive terms are selects; the correction term intersects two
     selects *)
  checkb "selection pushed into every term" true
    (List.for_all
       (fun (_, t) ->
         match t with
         | Ra.Select (_, _) -> true
         | Ra.Intersect (Ra.Select (_, _), Ra.Select (_, _)) -> true
         | _ -> false)
       terms)

let test_ie_project_over_difference_unsupported () =
  let e =
    Ra.Project ([ "a" ], Ra.Difference (Ra.relation "r", Ra.relation "s"))
  in
  checkb "unsupported" true
    (match Ie.rewrite e with _ -> false | exception Ie.Unsupported _ -> true)

(* The signed sum of exact term counts equals the exact count of the
   original expression — the algebraic soundness of the rewrite. *)
let ie_identity catalog e =
  let direct = Eval.count catalog e in
  let signed =
    List.fold_left
      (fun acc (sign, term) -> acc + (sign * Eval.count catalog term))
      0 (Ie.rewrite e)
  in
  direct = signed

let test_ie_identity_cases () =
  let r = [ (1, 1); (2, 2); (3, 3); (4, 4) ] in
  let s = [ (3, 3); (4, 4); (5, 5) ] in
  let catalog = Catalog.of_list [ ("r", file_of r); ("s", file_of s) ] in
  let lt k =
    Predicate.Cmp (Predicate.Lt, Predicate.Attr "a", Predicate.Const (Value.Int k))
  in
  List.iter
    (fun e -> checkb ("identity: " ^ Ra.to_string e) true (ie_identity catalog e))
    [
      Ra.Union (Ra.relation "r", Ra.relation "s");
      Ra.Difference (Ra.relation "r", Ra.relation "s");
      Ra.Difference (Ra.relation "s", Ra.relation "r");
      Ra.Select (lt 4, Ra.Union (Ra.relation "r", Ra.relation "s"));
      Ra.Union
        ( Ra.Select (lt 3, Ra.relation "r"),
          Ra.Difference (Ra.relation "s", Ra.relation "r") );
      Ra.Intersect (Ra.Union (Ra.relation "r", Ra.relation "s"), Ra.relation "r");
      Ra.Project ([ "a" ], Ra.Union (Ra.relation "r", Ra.relation "s"));
    ]

let gen_rel =
  QCheck.Gen.(
    list_size (int_range 0 8)
      (map (fun a -> (a, a)) (int_range 0 5)))

let prop_ie_identity =
  QCheck.Test.make ~name:"inclusion-exclusion identity on random sets" ~count:150
    (QCheck.make QCheck.Gen.(triple gen_rel gen_rel (int_range 0 6)))
    (fun (r, s, k) ->
      let dedup l = List.sort_uniq compare l in
      let r = dedup r and s = dedup s in
      QCheck.assume (r <> [] && s <> []);
      let catalog = Catalog.of_list [ ("r", file_of r); ("s", file_of s) ] in
      let lt =
        Predicate.Cmp (Predicate.Lt, Predicate.Attr "a", Predicate.Const (Value.Int k))
      in
      ie_identity catalog (Ra.Union (Ra.relation "r", Ra.relation "s"))
      && ie_identity catalog (Ra.Difference (Ra.relation "r", Ra.relation "s"))
      && ie_identity catalog (Ra.Select (lt, Ra.Difference (Ra.relation "r", Ra.relation "s"))))

(* ------------------------------------------------------------------ *)
(* Count estimator                                                     *)

let test_estimator_values () =
  let e = Count_estimator.of_sample ~hits:10.0 ~points:100.0 ~total_points:10_000.0 in
  checkf 1e-9 "scale up" 1000.0 e.Count_estimator.estimate;
  checkb "variance positive" true (e.Count_estimator.variance > 0.0);
  checkb "not exact" false e.Count_estimator.is_exact

let test_estimator_exact () =
  let e = Count_estimator.exact ~count:42.0 ~total_points:100.0 in
  checkf 1e-9 "estimate" 42.0 e.Count_estimator.estimate;
  checkf 1e-9 "variance" 0.0 e.Count_estimator.variance;
  checkb "exact" true e.Count_estimator.is_exact;
  let full = Count_estimator.of_sample ~hits:5.0 ~points:100.0 ~total_points:100.0 in
  checkb "full sample is exact" true full.Count_estimator.is_exact;
  checkf 1e-9 "fpc kills variance" 0.0 full.Count_estimator.variance

let test_estimator_degenerate_variance () =
  let zero = Count_estimator.of_sample ~hits:0.0 ~points:50.0 ~total_points:1000.0 in
  checkb "zero-hit variance is positive" true (zero.Count_estimator.variance > 0.0);
  checkf 1e-9 "zero-hit estimate" 0.0 zero.Count_estimator.estimate

let test_estimator_combine () =
  let a = Count_estimator.of_sample ~hits:10.0 ~points:100.0 ~total_points:1000.0 in
  let b = Count_estimator.of_sample ~hits:5.0 ~points:100.0 ~total_points:1000.0 in
  let c = Count_estimator.combine [ (1, a); (1, a); (-1, b) ] in
  checkf 1e-9 "signed sum" 150.0 c.Count_estimator.estimate;
  checkf 1e-9 "variances add"
    ((2.0 *. a.Count_estimator.variance) +. b.Count_estimator.variance)
    c.Count_estimator.variance

let test_srs_variance_formula () =
  (* hand check: p=0.5, m=10, n=100: 0.25/9 * 0.9 *)
  checkf 1e-9 "formula" (0.25 /. 9.0 *. 0.9)
    (Count_estimator.srs_variance_estimate ~p_hat:0.5 ~m:10.0 ~n:100.0);
  checkf 1e-9 "m<2" 0.0 (Count_estimator.srs_variance_estimate ~p_hat:0.5 ~m:1.0 ~n:100.0)

let test_cluster_variance () =
  let counts = [| 2.0; 4.0; 6.0 |] in
  (* mean 4, s^2 = 4, b=3, B=10: 100 * (1 - 0.3) * 4/3 *)
  checkf 1e-9 "cluster formula" (100.0 *. 0.7 *. (4.0 /. 3.0))
    (Count_estimator.cluster_variance_estimate ~counts ~total_blocks:10.0
       ~points_per_block:25.0);
  checkf 1e-9 "single block" 0.0
    (Count_estimator.cluster_variance_estimate ~counts:[| 3.0 |] ~total_blocks:10.0
       ~points_per_block:25.0)

(* Statistical: the estimator is unbiased over repeated samples. *)
let test_estimator_unbiased () =
  let rng = Prng.create 77 in
  let n = 1000 and k = 200 in
  (* population: exactly k "hits" among n points *)
  let hits_in sample = List.length (List.filter (fun v -> v < k) sample) in
  let s = Taqp_stats.Summary.create () in
  for _ = 1 to 3000 do
    let sample = Sample.without_replacement rng ~k:50 ~n in
    let e =
      Count_estimator.of_sample
        ~hits:(float_of_int (hits_in sample))
        ~points:50.0 ~total_points:(float_of_int n)
    in
    Taqp_stats.Summary.add s e.Count_estimator.estimate
  done;
  checkb "mean near true count" true
    (Float.abs (Taqp_stats.Summary.mean s -. float_of_int k) < 5.0)

(* Statistical: the SRS variance estimate matches the empirical one. *)
let test_variance_estimate_calibrated () =
  let rng = Prng.create 78 in
  let n = 1000 and k = 300 in
  let hits_in sample = List.length (List.filter (fun v -> v < k) sample) in
  let empirical = Taqp_stats.Summary.create () in
  let predicted = Taqp_stats.Summary.create () in
  for _ = 1 to 2000 do
    let sample = Sample.without_replacement rng ~k:80 ~n in
    let e =
      Count_estimator.of_sample
        ~hits:(float_of_int (hits_in sample))
        ~points:80.0 ~total_points:(float_of_int n)
    in
    Taqp_stats.Summary.add empirical e.Count_estimator.estimate;
    Taqp_stats.Summary.add predicted e.Count_estimator.variance
  done;
  let ratio =
    Taqp_stats.Summary.mean predicted /. Taqp_stats.Summary.variance empirical
  in
  checkb "variance estimate within 20%" true (ratio > 0.8 && ratio < 1.2)

(* ------------------------------------------------------------------ *)
(* Goodman                                                             *)

let test_occupancy_profile () =
  Alcotest.check Alcotest.(array int) "profile" [| 2; 0; 1 |]
    (Goodman.occupancy_profile [ 1; 3; 1 ]);
  checki "distinct" 3 (Goodman.distinct_observed ~profile:[| 2; 0; 1 |]);
  checkb "bad occupancy" true
    (match Goodman.occupancy_profile [ 0 ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* Exhaustive unbiasedness check on a tiny population: N=3 items in
   classes {a,a,b}; samples of size 2; E[Goodman] must be exactly 2. *)
let test_goodman_unbiased_tiny () =
  let classes = [| "a"; "a"; "b" |] in
  let samples = [ (0, 1); (0, 2); (1, 2) ] in
  let total =
    List.fold_left
      (fun acc (i, j) ->
        let occ = if classes.(i) = classes.(j) then [ 2 ] else [ 1; 1 ] in
        acc
        +. Goodman.unbiased ~population:3.0 ~sample:2
             ~profile:(Goodman.occupancy_profile occ))
      0.0 samples
  in
  checkf 1e-6 "expectation over all samples" 2.0 (total /. 3.0)

let test_goodman_full_sample_is_exact () =
  (* Sampling everything: estimator returns d exactly. *)
  let profile = Goodman.occupancy_profile [ 3; 2; 1 ] in
  checkf 1e-6 "full sample" 3.0 (Goodman.unbiased ~population:6.0 ~sample:6 ~profile)

let test_goodman_bounds_and_first_order () =
  let profile = Goodman.occupancy_profile [ 1; 1; 2 ] in
  let g = Goodman.unbiased ~population:100.0 ~sample:4 ~profile in
  checkb "clamped to [0, N]" true (g >= 0.0 && g <= 100.0);
  let fo = Goodman.first_order ~population:100.0 ~sample:4 ~profile in
  (* d + f1 (N-n)/n = 3 + 2*96/4 = 51 *)
  checkf 1e-6 "first order" 51.0 fo;
  checkf 1e-6 "scale up" 75.0 (Goodman.scale_up ~population:100.0 ~sample:4 ~distinct:3)

let test_chao_uniform_groups () =
  (* 100 groups of size 100; a 300-element sample: Chao should land
     near 100 while the first-order Goodman overshoots wildly. *)
  let rng = Prng.create 99 in
  let sample = Sample.without_replacement rng ~k:300 ~n:10_000 in
  let occupancies =
    let tbl = Hashtbl.create 128 in
    List.iter
      (fun v ->
        let g = v mod 100 in
        Hashtbl.replace tbl g (1 + Option.value ~default:0 (Hashtbl.find_opt tbl g)))
      sample;
    Hashtbl.fold (fun _ c acc -> c :: acc) tbl []
  in
  let profile = Goodman.occupancy_profile occupancies in
  let chao = Goodman.chao ~profile in
  checkb "chao near 100" true (chao > 80.0 && chao < 130.0);
  let fo = Goodman.first_order ~population:10_000.0 ~sample:300 ~profile in
  checkb "first-order overshoots uniform groups" true (fo > 2.0 *. chao)

let test_goodman_errors () =
  checkb "sample below mass" true
    (match
       Goodman.unbiased ~population:10.0 ~sample:1
         ~profile:(Goodman.occupancy_profile [ 2 ])
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* ------------------------------------------------------------------ *)
(* Selectivity records                                                 *)

let test_selectivity_record () =
  let r = Selectivity.create ~initial:0.5 in
  checkf 1e-9 "initial estimate" 0.5 (Selectivity.estimate r);
  Selectivity.observe r ~points:100.0 ~tuples:10.0;
  checkf 1e-9 "after one stage" 0.1 (Selectivity.estimate r);
  Selectivity.observe r ~points:100.0 ~tuples:30.0;
  checkf 1e-9 "cumulative ratio" 0.2 (Selectivity.estimate r);
  checki "stages" 2 (Selectivity.stages_observed r);
  Selectivity.set_cumulative r ~points:50.0 ~tuples:25.0;
  checkf 1e-9 "overwritten" 0.5 (Selectivity.estimate r)

let test_selectivity_initials () =
  checkf 1e-9 "select max" 1.0 (Selectivity.initial_for `Select);
  checkf 1e-9 "intersect" (1.0 /. 200.0) (Selectivity.initial_for (`Intersect (100, 200)))

let test_selectivity_errors () =
  checkb "bad initial" true
    (match Selectivity.create ~initial:0.0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let r = Selectivity.create ~initial:1.0 in
  checkb "tuples > points" true
    (match Selectivity.observe r ~points:5.0 ~tuples:6.0 with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_selectivity_design_effect () =
  let r = Selectivity.create ~initial:1.0 in
  Selectivity.observe r ~points:1000.0 ~tuples:100.0;
  let base = Selectivity.variance_srs r ~m_next:200.0 ~n_remaining:9000.0 in
  Selectivity.set_design_effect r 4.0;
  checkf 1e-12 "variance scales with deff" (4.0 *. base)
    (Selectivity.variance_srs r ~m_next:200.0 ~n_remaining:9000.0);
  checkf 1e-12 "accessor" 4.0 (Selectivity.design_effect r);
  checkb "invalid deff" true
    (match Selectivity.set_design_effect r 0.0 with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_selectivity_variance () =
  let r = Selectivity.create ~initial:1.0 in
  Selectivity.observe r ~points:1000.0 ~tuples:100.0;
  (* sel=0.1, m=200, N=9000: 0.1*0.9*(8800)/(200*8999) *)
  checkf 1e-12 "srs variance"
    (0.1 *. 0.9 *. 8800.0 /. (200.0 *. 8999.0))
    (Selectivity.variance_srs r ~m_next:200.0 ~n_remaining:9000.0);
  checkf 1e-12 "degenerate m" 0.0 (Selectivity.variance_srs r ~m_next:0.5 ~n_remaining:9000.0)

let () =
  Alcotest.run "estimators"
    [
      ( "point-space",
        [
          Alcotest.test_case "sizes" `Quick test_point_space_sizes;
          Alcotest.test_case "block mapping" `Quick test_point_space_mapping;
          Alcotest.test_case "errors" `Quick test_point_space_errors;
        ] );
      ( "inclusion-exclusion",
        [
          Alcotest.test_case "union expansion" `Quick test_ie_union;
          Alcotest.test_case "difference expansion" `Quick test_ie_difference;
          Alcotest.test_case "sjip untouched" `Quick test_ie_sjip_untouched;
          Alcotest.test_case "select distributes" `Quick test_ie_select_pushes_through;
          Alcotest.test_case "project over difference" `Quick
            test_ie_project_over_difference_unsupported;
          Alcotest.test_case "identity on fixed cases" `Quick test_ie_identity_cases;
          QCheck_alcotest.to_alcotest prop_ie_identity;
        ] );
      ( "count-estimator",
        [
          Alcotest.test_case "values" `Quick test_estimator_values;
          Alcotest.test_case "exactness" `Quick test_estimator_exact;
          Alcotest.test_case "degenerate variance" `Quick
            test_estimator_degenerate_variance;
          Alcotest.test_case "combine" `Quick test_estimator_combine;
          Alcotest.test_case "srs variance formula" `Quick test_srs_variance_formula;
          Alcotest.test_case "cluster variance formula" `Quick test_cluster_variance;
          Alcotest.test_case "unbiasedness" `Slow test_estimator_unbiased;
          Alcotest.test_case "variance calibration" `Slow
            test_variance_estimate_calibrated;
        ] );
      ( "goodman",
        [
          Alcotest.test_case "occupancy profile" `Quick test_occupancy_profile;
          Alcotest.test_case "unbiased on tiny population" `Quick
            test_goodman_unbiased_tiny;
          Alcotest.test_case "full sample exact" `Quick test_goodman_full_sample_is_exact;
          Alcotest.test_case "bounds and first order" `Quick
            test_goodman_bounds_and_first_order;
          Alcotest.test_case "chao on uniform groups" `Quick
            test_chao_uniform_groups;
          Alcotest.test_case "errors" `Quick test_goodman_errors;
        ] );
      ( "selectivity",
        [
          Alcotest.test_case "record" `Quick test_selectivity_record;
          Alcotest.test_case "initials" `Quick test_selectivity_initials;
          Alcotest.test_case "errors" `Quick test_selectivity_errors;
          Alcotest.test_case "variance" `Quick test_selectivity_variance;
          Alcotest.test_case "design effect" `Quick test_selectivity_design_effect;
        ] );
    ]
