test/test_timecost.ml: Alcotest Array Float List QCheck QCheck_alcotest Taqp_timecost
