test/test_relational.ml: Alcotest Array Eval Gen List Ops Predicate QCheck QCheck_alcotest Ra Schema Taqp_data Taqp_relational Taqp_storage Tuple Value
