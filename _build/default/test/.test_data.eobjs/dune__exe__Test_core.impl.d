test/test_core.ml: Alcotest Float List Taqp_core Taqp_estimators Taqp_relational Taqp_rng Taqp_sampling Taqp_stats Taqp_storage Taqp_timecontrol Taqp_timecost Taqp_workload Unix
