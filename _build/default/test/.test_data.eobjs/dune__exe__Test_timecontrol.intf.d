test/test_timecontrol.mli:
