test/test_timecontrol.ml: Alcotest Float QCheck QCheck_alcotest Taqp_estimators Taqp_stats Taqp_timecontrol
