test/test_btree.ml: Alcotest Array Btree Gen Int List QCheck QCheck_alcotest Schema Taqp_data Taqp_relational Taqp_rng Taqp_storage Tuple Value
