test/test_data.ml: Alcotest Array Fmt List QCheck QCheck_alcotest Schema Taqp_data Tuple Value
