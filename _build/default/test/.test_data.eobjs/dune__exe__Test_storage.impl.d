test/test_storage.ml: Alcotest Array Filename Float List Schema Sys Taqp_data Taqp_rng Taqp_storage Tuple Value
