test/test_parser.ml: Alcotest Fmt Parser Predicate QCheck QCheck_alcotest Ra Taqp_data Taqp_relational Value
