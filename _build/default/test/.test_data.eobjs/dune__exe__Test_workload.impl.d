test/test_workload.ml: Alcotest Int List Taqp_data Taqp_relational Taqp_rng Taqp_storage Taqp_workload
