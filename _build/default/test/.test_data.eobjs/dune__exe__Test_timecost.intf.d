test/test_timecost.mli:
