test/test_sampling.ml: Alcotest Int List QCheck QCheck_alcotest Taqp_rng Taqp_sampling
