test/test_rng.ml: Alcotest Array Float Int List QCheck QCheck_alcotest Seq Taqp_rng Taqp_stats
