module Prng = Taqp_rng.Prng
module Sample = Taqp_rng.Sample

let checki = Alcotest.check Alcotest.int
let checkb = Alcotest.check Alcotest.bool
let checkf = Alcotest.check (Alcotest.float 1e-9)

let stream rng n = List.init n (fun _ -> Prng.int rng 1_000_000)

let test_determinism () =
  let a = stream (Prng.create 42) 50 and b = stream (Prng.create 42) 50 in
  Alcotest.check Alcotest.(list int) "same seed same stream" a b;
  let c = stream (Prng.create 43) 50 in
  checkb "different seed differs" true (a <> c)

let test_copy () =
  let rng = Prng.create 7 in
  ignore (stream rng 10);
  let clone = Prng.copy rng in
  Alcotest.check Alcotest.(list int) "copy continues identically" (stream rng 20)
    (stream clone 20)

let test_split_diverges () =
  let rng = Prng.create 7 in
  let child = Prng.split rng in
  checkb "parent and child differ" true (stream rng 20 <> stream child 20)

let test_int_errors () =
  let rng = Prng.create 1 in
  Alcotest.check_raises "zero bound"
    (Invalid_argument "Prng.int: bound must be positive") (fun () ->
      ignore (Prng.int rng 0));
  Alcotest.check_raises "empty range"
    (Invalid_argument "Prng.int_in: empty range") (fun () ->
      ignore (Prng.int_in rng 3 2))

let test_int_in_bounds () =
  let rng = Prng.create 5 in
  for _ = 1 to 1000 do
    let v = Prng.int_in rng (-3) 4 in
    checkb "in range" true (v >= -3 && v <= 4)
  done

let test_bool_both () =
  let rng = Prng.create 5 in
  let trues = ref 0 in
  for _ = 1 to 1000 do
    if Prng.bool rng then incr trues
  done;
  checkb "roughly balanced" true (!trues > 400 && !trues < 600)

let test_gaussian_moments () =
  let rng = Prng.create 11 in
  let s = Taqp_stats.Summary.create () in
  for _ = 1 to 20_000 do
    Taqp_stats.Summary.add s (Prng.gaussian ~mu:3.0 ~sigma:2.0 rng)
  done;
  checkb "mean near 3" true (Float.abs (Taqp_stats.Summary.mean s -. 3.0) < 0.1);
  checkb "std near 2" true (Float.abs (Taqp_stats.Summary.stddev s -. 2.0) < 0.1)

let test_exponential_mean () =
  let rng = Prng.create 11 in
  let s = Taqp_stats.Summary.create () in
  for _ = 1 to 20_000 do
    Taqp_stats.Summary.add s (Prng.exponential rng 4.0)
  done;
  checkb "mean near 1/4" true (Float.abs (Taqp_stats.Summary.mean s -. 0.25) < 0.02)

let test_lognormal_mean_one () =
  let rng = Prng.create 11 in
  let s = Taqp_stats.Summary.create () in
  for _ = 1 to 50_000 do
    Taqp_stats.Summary.add s (Prng.lognormal_factor rng 0.2)
  done;
  checkb "mean corrected to 1" true
    (Float.abs (Taqp_stats.Summary.mean s -. 1.0) < 0.02);
  checkf "zero sigma is exactly 1" 1.0 (Prng.lognormal_factor rng 0.0)

let prop_int_bounds =
  QCheck.Test.make ~name:"Prng.int in [0,n)" ~count:500
    QCheck.(pair small_int (int_range 1 10_000))
    (fun (seed, n) ->
      let rng = Prng.create seed in
      let v = Prng.int rng n in
      v >= 0 && v < n)

let prop_float_bounds =
  QCheck.Test.make ~name:"Prng.float in [0,x)" ~count:500
    QCheck.(pair small_int (QCheck.float_range 0.001 100.0))
    (fun (seed, x) ->
      let rng = Prng.create seed in
      let v = Prng.float rng x in
      v >= 0.0 && v < x)

(* ------------------------------------------------------------------ *)
(* Sampling primitives                                                 *)

let test_wor_distinct () =
  let rng = Prng.create 3 in
  let s = Sample.without_replacement rng ~k:100 ~n:1000 in
  checki "size" 100 (List.length s);
  checki "distinct" 100 (List.length (List.sort_uniq Int.compare s));
  checkb "range" true (List.for_all (fun v -> v >= 0 && v < 1000) s)

let test_wor_full_population () =
  let rng = Prng.create 3 in
  let s = Sample.without_replacement rng ~k:50 ~n:50 in
  Alcotest.check
    Alcotest.(list int)
    "whole population"
    (List.init 50 (fun i -> i))
    (List.sort Int.compare s)

let test_wor_errors () =
  let rng = Prng.create 1 in
  Alcotest.check_raises "k > n"
    (Invalid_argument "Sample.without_replacement: k > n") (fun () ->
      ignore (Sample.without_replacement rng ~k:5 ~n:3))

let test_wor_uniform () =
  (* Every element should be selected with probability ~ k/n. *)
  let rng = Prng.create 9 in
  let counts = Array.make 20 0 in
  let trials = 4000 in
  for _ = 1 to trials do
    List.iter
      (fun v -> counts.(v) <- counts.(v) + 1)
      (Sample.without_replacement rng ~k:5 ~n:20)
  done;
  let expected = float_of_int trials *. 0.25 in
  Array.iter
    (fun c ->
      checkb "within 15% of uniform" true
        (Float.abs (float_of_int c -. expected) < 0.15 *. expected))
    counts

let test_from_excluding_sparse_and_dense () =
  let rng = Prng.create 4 in
  let excluded v = v mod 2 = 0 in
  (* sparse branch: k small relative to survivors *)
  let s = Sample.from_excluding rng ~k:10 ~n:1000 ~excluded ~excluded_count:500 in
  checki "sparse size" 10 (List.length s);
  checkb "sparse avoids" true (List.for_all (fun v -> v mod 2 = 1) s);
  (* dense branch: k close to the survivor count *)
  let s = Sample.from_excluding rng ~k:450 ~n:1000 ~excluded ~excluded_count:500 in
  checki "dense size" 450 (List.length s);
  checki "dense distinct" 450 (List.length (List.sort_uniq Int.compare s));
  checkb "dense avoids" true (List.for_all (fun v -> v mod 2 = 1) s)

let test_from_excluding_exhaustion () =
  let rng = Prng.create 4 in
  Alcotest.check_raises "too many requested"
    (Invalid_argument "Sample.from_excluding: not enough values remain")
    (fun () ->
      ignore
        (Sample.from_excluding rng ~k:501 ~n:1000
           ~excluded:(fun v -> v mod 2 = 0)
           ~excluded_count:500))

let test_shuffle_permutation () =
  let rng = Prng.create 5 in
  let a = Array.init 100 (fun i -> i) in
  Sample.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.check
    Alcotest.(array int)
    "still a permutation"
    (Array.init 100 (fun i -> i))
    sorted;
  checkb "actually shuffled" true (a <> Array.init 100 (fun i -> i))

let test_reservoir () =
  let rng = Prng.create 6 in
  let s = Sample.reservoir rng ~k:10 (Seq.init 100 (fun i -> i)) in
  checki "size" 10 (List.length s);
  checki "distinct" 10 (List.length (List.sort_uniq Int.compare s));
  let short = Sample.reservoir rng ~k:10 (Seq.init 3 (fun i -> i)) in
  checki "short sequence" 3 (List.length short);
  checki "k=0" 0 (List.length (Sample.reservoir rng ~k:0 (Seq.init 5 (fun i -> i))))

let test_bernoulli_extremes () =
  let rng = Prng.create 7 in
  for _ = 1 to 100 do
    checkb "p=1 always true" true (Sample.bernoulli rng ~p:1.0);
    checkb "p=0 always false" false (Sample.bernoulli rng ~p:0.0)
  done

let test_choose () =
  let rng = Prng.create 8 in
  let a = [| "x"; "y"; "z" |] in
  for _ = 1 to 50 do
    checkb "member" true (Array.mem (Sample.choose rng a) a)
  done;
  Alcotest.check_raises "empty" (Invalid_argument "Sample.choose: empty array")
    (fun () -> ignore (Sample.choose rng [||]))

(* ------------------------------------------------------------------ *)
(* Zipf                                                                *)

module Zipf = Taqp_rng.Zipf

let test_zipf_pmf_normalized () =
  let z = Zipf.create ~n:50 ~s:1.3 in
  let total = ref 0.0 in
  for k = 0 to 49 do
    total := !total +. Zipf.pmf z k
  done;
  checkf "sums to 1" 1.0 !total;
  checkb "monotone decreasing" true (Zipf.pmf z 0 > Zipf.pmf z 1);
  checki "n" 50 (Zipf.n z)

let test_zipf_uniform_special_case () =
  let z = Zipf.create ~n:10 ~s:0.0 in
  for k = 0 to 9 do
    checkf "uniform pmf" 0.1 (Zipf.pmf z k)
  done

let test_zipf_draw_distribution () =
  let z = Zipf.create ~n:20 ~s:1.0 in
  let rng = Prng.create 13 in
  let counts = Array.make 20 0 in
  let trials = 20_000 in
  for _ = 1 to trials do
    let k = Zipf.draw z rng in
    counts.(k) <- counts.(k) + 1
  done;
  for k = 0 to 19 do
    let expected = float_of_int trials *. Zipf.pmf z k in
    checkb "within 5 sigma of pmf" true
      (Float.abs (float_of_int counts.(k) -. expected)
      < 5.0 *. sqrt (Float.max expected 1.0) +. 5.0)
  done

let test_zipf_errors () =
  Alcotest.check_raises "n <= 0" (Invalid_argument "Zipf.create: n <= 0")
    (fun () -> ignore (Zipf.create ~n:0 ~s:1.0));
  Alcotest.check_raises "negative s"
    (Invalid_argument "Zipf.create: negative exponent") (fun () ->
      ignore (Zipf.create ~n:5 ~s:(-1.0)));
  let z = Zipf.create ~n:5 ~s:1.0 in
  Alcotest.check_raises "pmf range" (Invalid_argument "Zipf.pmf: rank out of range")
    (fun () -> ignore (Zipf.pmf z 5))

let () =
  Alcotest.run "rng"
    [
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "copy" `Quick test_copy;
          Alcotest.test_case "split diverges" `Quick test_split_diverges;
          Alcotest.test_case "int errors" `Quick test_int_errors;
          Alcotest.test_case "int_in bounds" `Quick test_int_in_bounds;
          Alcotest.test_case "bool balance" `Quick test_bool_both;
          Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
          Alcotest.test_case "exponential mean" `Quick test_exponential_mean;
          Alcotest.test_case "lognormal mean 1" `Quick test_lognormal_mean_one;
          QCheck_alcotest.to_alcotest prop_int_bounds;
          QCheck_alcotest.to_alcotest prop_float_bounds;
        ] );
      ( "sample",
        [
          Alcotest.test_case "without replacement distinct" `Quick test_wor_distinct;
          Alcotest.test_case "full population" `Quick test_wor_full_population;
          Alcotest.test_case "errors" `Quick test_wor_errors;
          Alcotest.test_case "uniformity" `Slow test_wor_uniform;
          Alcotest.test_case "from_excluding branches" `Quick
            test_from_excluding_sparse_and_dense;
          Alcotest.test_case "from_excluding exhaustion" `Quick
            test_from_excluding_exhaustion;
          Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
          Alcotest.test_case "reservoir" `Quick test_reservoir;
          Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
          Alcotest.test_case "choose" `Quick test_choose;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "pmf normalized" `Quick test_zipf_pmf_normalized;
          Alcotest.test_case "uniform special case" `Quick
            test_zipf_uniform_special_case;
          Alcotest.test_case "draw matches pmf" `Slow test_zipf_draw_distribution;
          Alcotest.test_case "errors" `Quick test_zipf_errors;
        ] );
    ]
