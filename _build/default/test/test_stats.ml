module Summary = Taqp_stats.Summary
module Distribution = Taqp_stats.Distribution
module Least_squares = Taqp_stats.Least_squares
module Confidence = Taqp_stats.Confidence
module Histogram = Taqp_stats.Histogram
module Prng = Taqp_rng.Prng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf eps = Alcotest.check (Alcotest.float eps)

(* ------------------------------------------------------------------ *)
(* Summary                                                             *)

let naive_mean xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let naive_var xs =
  let m = naive_mean xs in
  List.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs
  /. float_of_int (List.length xs - 1)

let test_summary_against_naive () =
  let xs = [ 1.5; -2.0; 3.25; 0.0; 10.0; 4.5 ] in
  let s = Summary.of_list xs in
  checkf 1e-9 "mean" (naive_mean xs) (Summary.mean s);
  checkf 1e-9 "variance" (naive_var xs) (Summary.variance s);
  checkf 1e-9 "min" (-2.0) (Summary.min s);
  checkf 1e-9 "max" 10.0 (Summary.max s);
  checkf 1e-9 "total" (List.fold_left ( +. ) 0.0 xs) (Summary.total s);
  checki "count" 6 (Summary.count s)

let test_summary_empty () =
  let s = Summary.create () in
  checkf 1e-9 "mean 0" 0.0 (Summary.mean s);
  checkf 1e-9 "variance 0" 0.0 (Summary.variance s);
  checki "count" 0 (Summary.count s)

let test_summary_merge () =
  let xs = [ 1.0; 2.0; 3.0 ] and ys = [ 10.0; 20.0; 30.0; 40.0 ] in
  let merged = Summary.merge (Summary.of_list xs) (Summary.of_list ys) in
  let whole = Summary.of_list (xs @ ys) in
  checkf 1e-9 "merged mean" (Summary.mean whole) (Summary.mean merged);
  checkf 1e-9 "merged variance" (Summary.variance whole) (Summary.variance merged);
  checki "merged count" 7 (Summary.count merged)

let prop_summary_matches_naive =
  QCheck.Test.make ~name:"Summary matches naive formulas" ~count:200
    QCheck.(list_of_size Gen.(int_range 2 50) (float_range (-100.) 100.))
    (fun xs ->
      let s = Summary.of_list xs in
      Float.abs (Summary.mean s -. naive_mean xs) < 1e-6
      && Float.abs (Summary.variance s -. naive_var xs) < 1e-6)

(* ------------------------------------------------------------------ *)
(* Distribution                                                        *)

let test_erf () =
  checkf 1e-6 "erf 0" 0.0 (Distribution.erf 0.0);
  checkf 1e-4 "erf 1" 0.8427 (Distribution.erf 1.0);
  checkf 1e-6 "odd symmetry" (-.Distribution.erf 0.7) (Distribution.erf (-0.7))

let test_normal_cdf () =
  checkf 1e-7 "median" 0.5 (Distribution.normal_cdf 0.0);
  checkf 1e-4 "one sigma" 0.8413 (Distribution.normal_cdf 1.0);
  checkf 1e-4 "shifted" 0.5 (Distribution.normal_cdf ~mu:3.0 ~sigma:2.0 3.0)

let test_quantile_roundtrip () =
  List.iter
    (fun p ->
      checkf 1e-6 "cdf(quantile(p)) = p" p
        (Distribution.normal_cdf (Distribution.normal_quantile p)))
    [ 0.001; 0.01; 0.1; 0.25; 0.5; 0.8; 0.95; 0.999 ]

let test_quantile_bounds () =
  Alcotest.check_raises "p=0"
    (Invalid_argument "Distribution.normal_quantile: p outside (0,1)")
    (fun () -> ignore (Distribution.normal_quantile 0.0))

let test_risk_to_d () =
  checkf 1e-9 "50% risk -> 0" 0.0 (Distribution.risk_to_d 0.5);
  checkf 1e-3 "5% risk -> 1.645" 1.645 (Distribution.risk_to_d 0.05);
  checkf 1e-6 "roundtrip" 0.05 (Distribution.d_to_risk (Distribution.risk_to_d 0.05))

let test_zero_selectivity_fix () =
  let s = Distribution.zero_selectivity_fix ~beta:0.05 ~m:100 in
  checkb "positive" true (s > 0.0);
  (* By construction: (1-s)^m = beta. *)
  checkf 1e-9 "defining identity" 0.05 (Distribution.binomial_tail_zero ~sel:s ~m:100);
  let s2 = Distribution.zero_selectivity_fix ~beta:0.05 ~m:1000 in
  checkb "more points -> smaller fix" true (s2 < s)

(* ------------------------------------------------------------------ *)
(* Least squares                                                       *)

let test_ls_recovers_coefficients () =
  let model = Least_squares.create ~init:[| 1.0; 1.0 |] () in
  let rng = Prng.create 1 in
  for _ = 1 to 50 do
    let a = Prng.float rng 10.0 and b = Prng.float rng 10.0 in
    Least_squares.observe model ~x:[| a; b |] ~y:((3.0 *. a) +. (0.5 *. b))
  done;
  let c = Least_squares.coefficients model in
  checkf 0.05 "first coefficient" 3.0 c.(0);
  checkf 0.05 "second coefficient" 0.5 c.(1);
  checkf 0.2 "prediction" 6.5 (Least_squares.predict model [| 2.0; 1.0 |])

let test_ls_no_data_falls_back () =
  let model = Least_squares.create ~init:[| 2.0; 5.0 |] () in
  let c = Least_squares.coefficients model in
  checkf 1e-9 "init 0" 2.0 c.(0);
  checkf 1e-9 "init 1" 5.0 c.(1)

let test_ls_anchor_scale () =
  let model = Least_squares.create ~init:[| 2.0 |] () in
  Least_squares.set_anchor_scale model 0.5;
  checkf 1e-9 "scaled init" 1.0 (Least_squares.coefficients model).(0);
  (* One observation in the single feature direction dominates. *)
  Least_squares.observe model ~x:[| 10.0 |] ~y:30.0;
  checkf 0.1 "data wins along observed direction" 3.0
    (Least_squares.coefficients model).(0)

let test_ls_negative_clamped () =
  let model = Least_squares.create ~init:[| 1.0 |] () in
  Least_squares.observe model ~x:[| 1.0 |] ~y:(-5.0);
  Least_squares.observe model ~x:[| 2.0 |] ~y:(-10.0);
  checkf 1e-9 "clamped at zero" 0.0 (Least_squares.coefficients model).(0)

let test_ls_errors () =
  Alcotest.check_raises "empty init"
    (Invalid_argument "Least_squares.create: empty init") (fun () ->
      ignore (Least_squares.create ~init:[||] ()));
  let model = Least_squares.create ~init:[| 1.0 |] () in
  Alcotest.check_raises "dim mismatch"
    (Invalid_argument "Least_squares.observe: dimension mismatch") (fun () ->
      Least_squares.observe model ~x:[| 1.0; 2.0 |] ~y:1.0);
  Alcotest.check_raises "non-finite"
    (Invalid_argument "Least_squares.observe: non-finite input") (fun () ->
      Least_squares.observe model ~x:[| nan |] ~y:1.0)

let test_simple_fit () =
  let a, b = Least_squares.simple_fit [ (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) ] in
  checkf 1e-9 "intercept" 1.0 a;
  checkf 1e-9 "slope" 2.0 b;
  Alcotest.check_raises "degenerate"
    (Invalid_argument "Least_squares.simple_fit: degenerate x values") (fun () ->
      ignore (Least_squares.simple_fit [ (1.0, 1.0); (1.0, 2.0) ]))

(* ------------------------------------------------------------------ *)
(* Confidence                                                          *)

let test_confidence_basics () =
  let ci = Confidence.normal ~mean:100.0 ~variance:25.0 ~level:0.95 in
  checkf 1e-2 "half width = 1.96 sigma" (1.96 *. 5.0) ci.Confidence.half_width;
  checkb "contains center" true (Confidence.contains ci 100.0);
  checkb "excludes far" false (Confidence.contains ci 200.0);
  checkf 1e-9 "lower+upper symmetric" 200.0 (Confidence.lower ci +. Confidence.upper ci);
  (match Confidence.relative_half_width ci with
  | Some w -> checkf 1e-4 "relative" (1.96 *. 5.0 /. 100.0) w
  | None -> Alcotest.fail "expected Some");
  Alcotest.check
    Alcotest.(option (float 1.0))
    "zero center" None
    (Confidence.relative_half_width
       (Confidence.normal ~mean:0.0 ~variance:1.0 ~level:0.9))

let test_confidence_coverage () =
  (* 95% CIs built from gaussian samples should cover the true mean
     roughly 95% of the time. *)
  let rng = Prng.create 21 in
  let covered = ref 0 in
  let trials = 400 in
  for _ = 1 to trials do
    let s = Summary.create () in
    for _ = 1 to 50 do
      Summary.add s (Prng.gaussian ~mu:10.0 ~sigma:3.0 rng)
    done;
    let ci =
      Confidence.normal ~mean:(Summary.mean s)
        ~variance:(Summary.variance s /. 50.0)
        ~level:0.95
    in
    if Confidence.contains ci 10.0 then incr covered
  done;
  let rate = float_of_int !covered /. float_of_int trials in
  checkb "coverage near 95%" true (rate > 0.89 && rate < 0.99)

(* ------------------------------------------------------------------ *)
(* Histogram                                                           *)

let test_histogram () =
  let h = Histogram.create ~bins:10 ~lo:0.0 ~hi:10.0 () in
  List.iter (Histogram.add h) [ 0.5; 1.5; 1.6; 9.5; 100.0; -5.0 ];
  checki "count" 6 (Histogram.count h);
  checki "clamped high into last bin" 2 (Histogram.counts h).(9);
  checki "clamped low into first bin" 2 (Histogram.counts h).(0);
  checki "mode is a fullest bin" 0 (Histogram.mode_bin h);
  let lo, hi = Histogram.bin_range h 3 in
  checkf 1e-9 "bin lo" 3.0 lo;
  checkf 1e-9 "bin hi" 4.0 hi

let test_histogram_quantile () =
  let h = Histogram.create ~bins:100 ~lo:0.0 ~hi:1.0 () in
  let rng = Prng.create 2 in
  for _ = 1 to 10_000 do
    Histogram.add h (Prng.float rng 1.0)
  done;
  checkb "median near 0.5" true (Float.abs (Histogram.quantile h 0.5 -. 0.5) < 0.03);
  checkb "p90 near 0.9" true (Float.abs (Histogram.quantile h 0.9 -. 0.9) < 0.03)

let test_histogram_errors () =
  Alcotest.check_raises "hi <= lo" (Invalid_argument "Histogram.create: hi <= lo")
    (fun () -> ignore (Histogram.create ~lo:1.0 ~hi:1.0 ()));
  let h = Histogram.create ~lo:0.0 ~hi:1.0 () in
  Alcotest.check_raises "empty quantile"
    (Invalid_argument "Histogram.quantile: empty histogram") (fun () ->
      ignore (Histogram.quantile h 0.5))

let () =
  Alcotest.run "stats"
    [
      ( "summary",
        [
          Alcotest.test_case "against naive" `Quick test_summary_against_naive;
          Alcotest.test_case "empty" `Quick test_summary_empty;
          Alcotest.test_case "merge" `Quick test_summary_merge;
          QCheck_alcotest.to_alcotest prop_summary_matches_naive;
        ] );
      ( "distribution",
        [
          Alcotest.test_case "erf" `Quick test_erf;
          Alcotest.test_case "normal cdf" `Quick test_normal_cdf;
          Alcotest.test_case "quantile roundtrip" `Quick test_quantile_roundtrip;
          Alcotest.test_case "quantile bounds" `Quick test_quantile_bounds;
          Alcotest.test_case "risk_to_d" `Quick test_risk_to_d;
          Alcotest.test_case "zero-selectivity fix" `Quick test_zero_selectivity_fix;
        ] );
      ( "least-squares",
        [
          Alcotest.test_case "recovers coefficients" `Quick
            test_ls_recovers_coefficients;
          Alcotest.test_case "no data falls back to init" `Quick
            test_ls_no_data_falls_back;
          Alcotest.test_case "anchor scaling" `Quick test_ls_anchor_scale;
          Alcotest.test_case "negative clamp" `Quick test_ls_negative_clamped;
          Alcotest.test_case "errors" `Quick test_ls_errors;
          Alcotest.test_case "simple fit" `Quick test_simple_fit;
        ] );
      ( "confidence",
        [
          Alcotest.test_case "basics" `Quick test_confidence_basics;
          Alcotest.test_case "coverage" `Slow test_confidence_coverage;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "counts and clamping" `Quick test_histogram;
          Alcotest.test_case "quantiles" `Quick test_histogram_quantile;
          Alcotest.test_case "errors" `Quick test_histogram_errors;
        ] );
    ]
