module Formulas = Taqp_timecost.Formulas
module Cost_model = Taqp_timecost.Cost_model

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf eps = Alcotest.check (Alcotest.float eps)

let all_kinds =
  Formulas.[ Scan; Select; Join; Intersect; Project; Overhead ]

let test_steps_nonempty () =
  List.iter
    (fun k -> checkb (Formulas.kind_name k) true (Formulas.steps k <> []))
    all_kinds

let test_step_dims_match_initials () =
  List.iter
    (fun k ->
      List.iter
        (fun s ->
          checki
            (Formulas.kind_name k ^ "/" ^ Formulas.step_name s)
            (Formulas.step_dim s)
            (Array.length (Formulas.step_initial s)))
        (Formulas.steps k))
    all_kinds

let test_join_has_merge_step () =
  checkb "join merges" true (List.mem Formulas.Step_merge (Formulas.steps Formulas.Join));
  checkb "intersect merges" true
    (List.mem Formulas.Step_merge (Formulas.steps Formulas.Intersect));
  checkb "select does not sort" false
    (List.mem Formulas.Step_sort (Formulas.steps Formulas.Select))

let test_features_pick_fields () =
  let m =
    {
      Formulas.zero_measures with
      Formulas.n_input = 10.0;
      comparisons = 3.0;
      merge_reads = 50.0;
      pairings = 5.0;
    }
  in
  Alcotest.check
    Alcotest.(array (float 1e-9))
    "check features" [| 10.0; 30.0 |]
    (Formulas.step_features Formulas.Step_check m);
  Alcotest.check
    Alcotest.(array (float 1e-9))
    "merge features" [| 50.0; 5.0 |]
    (Formulas.step_features Formulas.Step_merge m);
  Alcotest.check
    Alcotest.(array (float 1e-9))
    "fixed features" [| 1.0 |]
    (Formulas.step_features Formulas.Step_fixed m)

(* ------------------------------------------------------------------ *)
(* Cost model                                                          *)

let test_register_and_predict_initial () =
  let cm = Cost_model.create () in
  Cost_model.register cm ~id:0 Formulas.Overhead;
  checkb "kind" true (Cost_model.kind cm ~id:0 = Formulas.Overhead);
  Alcotest.check Alcotest.(list int) "ids" [ 0 ] (Cost_model.ids cm);
  checkf 1e-9 "initial prediction"
    (Formulas.step_initial Formulas.Step_fixed).(0)
    (Cost_model.predict cm ~id:0 Formulas.zero_measures);
  checkb "duplicate raises" true
    (match Cost_model.register cm ~id:0 Formulas.Scan with
    | () -> false
    | exception Invalid_argument _ -> true);
  checkb "unknown id raises" true
    (match Cost_model.predict cm ~id:99 Formulas.zero_measures with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_initial_scale () =
  let cm = Cost_model.create ~initial_scale:2.0 () in
  Cost_model.register cm ~id:0 Formulas.Overhead;
  checkf 1e-9 "scaled initial"
    (2.0 *. (Formulas.step_initial Formulas.Step_fixed).(0))
    (Cost_model.predict cm ~id:0 Formulas.zero_measures)

let measures_scan blocks =
  { Formulas.zero_measures with Formulas.blocks = float_of_int blocks }

let test_observe_converges () =
  (* Ground truth: 0.01 s per block, no constant. *)
  let cm = Cost_model.create () in
  Cost_model.register cm ~id:1 Formulas.Scan;
  for i = 1 to 20 do
    let blocks = 5 + (i mod 7) in
    Cost_model.observe_step cm ~id:1 ~step:Formulas.Step_read (measures_scan blocks)
      ~seconds:(0.01 *. float_of_int blocks)
  done;
  let predicted = Cost_model.predict cm ~id:1 (measures_scan 100) in
  checkb "converged to ground truth" true (Float.abs (predicted -. 1.0) < 0.08)

let test_observe_level_recalibration () =
  (* A single observation at one workload should debias predictions at a
     different workload via the anchor rescaling. *)
  let cm = Cost_model.create () in
  Cost_model.register cm ~id:1 Formulas.Scan;
  let before10 = Cost_model.predict cm ~id:1 (measures_scan 10) in
  let before30 = Cost_model.predict cm ~id:1 (measures_scan 30) in
  (* actual device is ~half the designer constants *)
  Cost_model.observe_step cm ~id:1 ~step:Formulas.Step_read (measures_scan 10)
    ~seconds:(before10 /. 2.0);
  let after30 = Cost_model.predict cm ~id:1 (measures_scan 30) in
  checkb "moved toward the observed level" true (after30 < 0.7 *. before30)

let test_non_adaptive_frozen () =
  let cm = Cost_model.create ~adaptive:false () in
  Cost_model.register cm ~id:1 Formulas.Scan;
  let before = Cost_model.predict cm ~id:1 (measures_scan 10) in
  Cost_model.observe_step cm ~id:1 ~step:Formulas.Step_read (measures_scan 10)
    ~seconds:0.0001;
  checkf 1e-12 "unchanged" before (Cost_model.predict cm ~id:1 (measures_scan 10));
  checkb "flag" false (Cost_model.adaptive cm)

let test_wrong_step_rejected () =
  let cm = Cost_model.create () in
  Cost_model.register cm ~id:1 Formulas.Select;
  checkb "select has no sort step" true
    (match
       Cost_model.observe_step cm ~id:1 ~step:Formulas.Step_sort
         Formulas.zero_measures ~seconds:1.0
     with
    | () -> false
    | exception Invalid_argument _ -> true)

let test_total_sums () =
  let cm = Cost_model.create () in
  Cost_model.register cm ~id:1 Formulas.Scan;
  Cost_model.register cm ~id:2 Formulas.Overhead;
  let plan = [ (1, measures_scan 10); (2, Formulas.zero_measures) ] in
  checkf 1e-9 "total = sum of predictions"
    (Cost_model.predict cm ~id:1 (measures_scan 10)
    +. Cost_model.predict cm ~id:2 Formulas.zero_measures)
    (Cost_model.total cm plan)

let test_predict_nonnegative () =
  let cm = Cost_model.create () in
  Cost_model.register cm ~id:1 Formulas.Scan;
  (* Train toward zero cost; prediction must stay >= 0. *)
  for _ = 1 to 10 do
    Cost_model.observe_step cm ~id:1 ~step:Formulas.Step_read (measures_scan 10)
      ~seconds:1e-9
  done;
  checkb "nonnegative" true (Cost_model.predict cm ~id:1 (measures_scan 50) >= 0.0)

let prop_predict_monotone_in_blocks =
  QCheck.Test.make ~name:"scan prediction monotone in blocks" ~count:50
    QCheck.(pair (int_range 1 50) (int_range 1 50))
    (fun (a, b) ->
      let cm = Cost_model.create () in
      Cost_model.register cm ~id:1 Formulas.Scan;
      let pa = Cost_model.predict cm ~id:1 (measures_scan a) in
      let pb = Cost_model.predict cm ~id:1 (measures_scan b) in
      (a <= b && pa <= pb) || (a >= b && pa >= pb))

let () =
  Alcotest.run "timecost"
    [
      ( "formulas",
        [
          Alcotest.test_case "steps nonempty" `Quick test_steps_nonempty;
          Alcotest.test_case "dims match initials" `Quick test_step_dims_match_initials;
          Alcotest.test_case "step composition" `Quick test_join_has_merge_step;
          Alcotest.test_case "feature extraction" `Quick test_features_pick_fields;
        ] );
      ( "cost-model",
        [
          Alcotest.test_case "register/predict" `Quick test_register_and_predict_initial;
          Alcotest.test_case "initial scale" `Quick test_initial_scale;
          Alcotest.test_case "convergence" `Quick test_observe_converges;
          Alcotest.test_case "level recalibration" `Quick
            test_observe_level_recalibration;
          Alcotest.test_case "non-adaptive frozen" `Quick test_non_adaptive_frozen;
          Alcotest.test_case "wrong step rejected" `Quick test_wrong_step_rejected;
          Alcotest.test_case "total sums" `Quick test_total_sums;
          Alcotest.test_case "nonnegative" `Quick test_predict_nonnegative;
          QCheck_alcotest.to_alcotest prop_predict_monotone_in_blocks;
        ] );
    ]
