module Generator = Taqp_workload.Generator
module Paper_setup = Taqp_workload.Paper_setup
module Heap_file = Taqp_storage.Heap_file
module Eval = Taqp_relational.Eval
module Prng = Taqp_rng.Prng

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let small = { Generator.n_tuples = 200; tuple_bytes = 200; block_bytes = 1024 }

let test_paper_spec () =
  checki "tuples" 10_000 Generator.paper_spec.Generator.n_tuples;
  checki "tuple bytes" 200 Generator.paper_spec.Generator.tuple_bytes;
  let r = Generator.relation ~spec:small ~rng:(Prng.create 1) () in
  checki "blocking factor 5" 5 (Heap_file.blocking_factor r);
  checki "blocks" 40 (Heap_file.n_blocks r);
  checki "tuples stored" 200 (Heap_file.n_tuples r)

let test_sel_column_is_permutation () =
  let r = Generator.relation ~spec:small ~rng:(Prng.create 2) () in
  let sels =
    List.filter_map
      (fun t -> Taqp_data.Value.to_int (Taqp_data.Tuple.get t 1))
      (Heap_file.to_list r)
  in
  Alcotest.check
    Alcotest.(list int)
    "permutation of 0..n-1"
    (List.init 200 (fun i -> i))
    (List.sort Int.compare sels)

let test_selection_workload_exact () =
  let wl = Paper_setup.selection ~spec:small ~output:37 ~seed:3 () in
  checki "exact equals requested output" 37 wl.Paper_setup.exact;
  checki "agrees with evaluator" 37 (Eval.count wl.catalog wl.query)

let test_join_workload () =
  let wl = Paper_setup.join ~spec:small ~target_output:1000 ~seed:3 () in
  (* group size c = round(1000/200) = 5; 40 groups of 5x5 = 1000 *)
  checki "exact output" 1000 wl.Paper_setup.exact;
  checki "group size" 5 (Generator.join_group_size ~n:200 ~target_output:1000)

let test_join_group_size_bounds () =
  checki "clamped low" 1 (Generator.join_group_size ~n:100 ~target_output:0);
  checki "clamped high" 100 (Generator.join_group_size ~n:100 ~target_output:100_000_000);
  checkb "invalid n" true
    (match Generator.join_group_size ~n:0 ~target_output:10 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_intersection_full_overlap () =
  let wl = Paper_setup.intersection ~spec:small ~seed:4 () in
  checki "full overlap" 200 wl.Paper_setup.exact

let test_intersection_partial_overlap () =
  let wl = Paper_setup.intersection ~spec:small ~overlap:50 ~seed:4 () in
  checki "partial overlap" 50 wl.Paper_setup.exact

let test_partial_copy_bounds () =
  let r = Generator.relation ~spec:small ~rng:(Prng.create 5) () in
  checkb "bad keep" true
    (match Generator.partial_copy ~rng:(Prng.create 1) ~keep:201 ~fresh_ids_from:1000 r with
    | _ -> false
    | exception Invalid_argument _ -> true);
  let c = Generator.partial_copy ~rng:(Prng.create 1) ~keep:0 ~fresh_ids_from:1000 r in
  checki "cardinality preserved" 200 (Heap_file.n_tuples c)

let test_shuffled_copy_same_set () =
  let r = Generator.relation ~spec:small ~rng:(Prng.create 6) () in
  let c = Generator.shuffled_copy ~rng:(Prng.create 7) r in
  let key f =
    List.sort Taqp_data.Tuple.compare (Heap_file.to_list f)
  in
  checkb "same tuple set" true
    (List.for_all2 Taqp_data.Tuple.equal (key r) (key c));
  (* physically different placement with overwhelming probability *)
  checkb "different order" true
    (not (List.for_all2 Taqp_data.Tuple.equal (Heap_file.to_list r) (Heap_file.to_list c)))

let test_projection_workload () =
  let wl = Paper_setup.projection ~spec:small ~groups:13 ~seed:8 () in
  checki "distinct groups" 13 wl.Paper_setup.exact

let test_select_join_workload () =
  let wl = Paper_setup.select_join ~spec:small ~target_output:1000 ~keep:40 ~seed:8 () in
  checkb "filtered below join size" true (wl.Paper_setup.exact < 1000);
  checki "agrees with evaluator" wl.Paper_setup.exact (Eval.count wl.catalog wl.query)

let test_projection_skewed_workload () =
  let wl = Paper_setup.projection_skewed ~spec:small ~groups:30 ~zipf_s:1.5 ~seed:9 () in
  checkb "realized groups bounded" true (wl.Paper_setup.exact <= 30);
  checkb "some groups realized" true (wl.Paper_setup.exact >= 5);
  checki "agrees with evaluator" wl.Paper_setup.exact
    (Eval.count wl.catalog wl.query)

let test_union_workload () =
  let wl = Paper_setup.union_of_selects ~spec:small ~seed:8 () in
  (* sel < 60 plus sel >= 160: 60 + 40 = 100 *)
  checki "disjoint union" 100 wl.Paper_setup.exact

let () =
  Alcotest.run "workload"
    [
      ( "generator",
        [
          Alcotest.test_case "paper spec" `Quick test_paper_spec;
          Alcotest.test_case "sel permutation" `Quick test_sel_column_is_permutation;
          Alcotest.test_case "join group size" `Quick test_join_group_size_bounds;
          Alcotest.test_case "partial copy" `Quick test_partial_copy_bounds;
          Alcotest.test_case "shuffled copy" `Quick test_shuffled_copy_same_set;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "selection exact" `Quick test_selection_workload_exact;
          Alcotest.test_case "join" `Quick test_join_workload;
          Alcotest.test_case "intersection full" `Quick test_intersection_full_overlap;
          Alcotest.test_case "intersection partial" `Quick
            test_intersection_partial_overlap;
          Alcotest.test_case "projection" `Quick test_projection_workload;
          Alcotest.test_case "skewed projection" `Quick test_projection_skewed_workload;
          Alcotest.test_case "select-join" `Quick test_select_join_workload;
          Alcotest.test_case "union" `Quick test_union_workload;
        ] );
    ]
