open Taqp_data

let check = Alcotest.check
let checki = check Alcotest.int
let checkb = check Alcotest.bool
let checks = check Alcotest.string

(* ------------------------------------------------------------------ *)
(* Value                                                               *)

let test_value_compare_numeric () =
  checki "int order" (-1) (compare (Value.compare (Value.Int 1) (Value.Int 2)) 0);
  checki "cross int/float eq" 0 (Value.compare (Value.Int 2) (Value.Float 2.0));
  checkb "cross int/float lt" true
    (Value.compare (Value.Int 1) (Value.Float 1.5) < 0);
  checkb "float/int gt" true (Value.compare (Value.Float 2.5) (Value.Int 2) > 0)

let test_value_compare_ranks () =
  checkb "null first" true (Value.compare Value.Null (Value.Bool false) < 0);
  checkb "bool before int" true (Value.compare (Value.Bool true) (Value.Int 0) < 0);
  checkb "number before string" true
    (Value.compare (Value.Int 999) (Value.String "") < 0)

let test_value_equal_hash () =
  checkb "equal ints hash equal" true
    (Value.hash (Value.Int 5) = Value.hash (Value.Int 5));
  checkb "int/float equal implies hash equal" true
    (Value.hash (Value.Int 5) = Value.hash (Value.Float 5.0));
  checkb "equal" true (Value.equal (Value.String "x") (Value.String "x"));
  checkb "not equal" false (Value.equal (Value.String "x") (Value.String "y"))

let test_value_sizes () =
  checki "int" 8 (Value.byte_size (Value.Int 1));
  checki "float" 8 (Value.byte_size (Value.Float 1.0));
  checki "bool" 1 (Value.byte_size (Value.Bool true));
  checki "null" 1 (Value.byte_size Value.Null);
  checki "string" 5 (Value.byte_size (Value.String "hello"))

let test_value_coercions () =
  check Alcotest.(option int) "to_int" (Some 3) (Value.to_int (Value.Int 3));
  check Alcotest.(option int) "float not int" None (Value.to_int (Value.Float 3.0));
  check
    Alcotest.(option (float 1e-9))
    "int to float" (Some 3.0)
    (Value.to_float (Value.Int 3));
  checkb "null is null" true (Value.is_null Value.Null);
  checkb "int not null" false (Value.is_null (Value.Int 0))

let test_value_pp () =
  checks "int" "3" (Value.to_string (Value.Int 3));
  checks "string quoted" "\"a\"" (Value.to_string (Value.String "a"));
  checks "null" "null" (Value.to_string Value.Null)

let value_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Value.Int i) small_signed_int;
        map (fun f -> Value.Float f) (float_bound_inclusive 1000.0);
        map (fun s -> Value.String s) small_string;
        map (fun b -> Value.Bool b) bool;
        return Value.Null;
      ])

let value_arb = QCheck.make ~print:Value.to_string value_gen

let prop_compare_antisym =
  QCheck.Test.make ~name:"Value.compare antisymmetric" ~count:300
    (QCheck.pair value_arb value_arb) (fun (a, b) ->
      Value.compare a b = -Value.compare b a)

let prop_compare_trans =
  QCheck.Test.make ~name:"Value.compare transitive" ~count:300
    (QCheck.triple value_arb value_arb value_arb) (fun (a, b, c) ->
      let sorted = List.sort Value.compare [ a; b; c ] in
      match sorted with
      | [ x; y; z ] -> Value.compare x y <= 0 && Value.compare y z <= 0
      | _ -> false)

let prop_equal_hash =
  QCheck.Test.make ~name:"Value equal implies same hash" ~count:300
    (QCheck.pair value_arb value_arb) (fun (a, b) ->
      (not (Value.equal a b)) || Value.hash a = Value.hash b)

(* ------------------------------------------------------------------ *)
(* Schema                                                              *)

let schema_abc =
  Schema.make
    [
      { Schema.name = "a"; ty = Value.Tint };
      { Schema.name = "b"; ty = Value.Tstring };
      { Schema.name = "c"; ty = Value.Tfloat };
    ]

let test_schema_basics () =
  checki "arity" 3 (Schema.arity schema_abc);
  check Alcotest.(list string) "names" [ "a"; "b"; "c" ] (Schema.names schema_abc);
  checki "find" 1 (Schema.find schema_abc "b");
  checkb "mem" true (Schema.mem schema_abc "c");
  checkb "not mem" false (Schema.mem schema_abc "z")

let test_schema_duplicate () =
  Alcotest.check_raises "duplicate attr"
    (Schema.Schema_error "duplicate attribute a") (fun () ->
      ignore
        (Schema.make
           [
             { Schema.name = "a"; ty = Value.Tint };
             { Schema.name = "a"; ty = Value.Tint };
           ]))

let test_schema_qualified_lookup () =
  let q = Schema.qualify "r" schema_abc in
  check Alcotest.(list string) "qualified names" [ "r.a"; "r.b"; "r.c" ]
    (Schema.names q);
  checki "find by base name" 0 (Schema.find q "a");
  checki "find qualified" 2 (Schema.find q "r.c")

let test_schema_ambiguous () =
  let j = Schema.concat (Schema.qualify "r" schema_abc) (Schema.qualify "s" schema_abc) in
  checki "arity" 6 (Schema.arity j);
  checkb "ambiguous raises" true
    (match Schema.find j "a" with
    | _ -> false
    | exception Schema.Schema_error _ -> true);
  checki "qualified ok" 3 (Schema.find j "s.a")

let test_schema_project () =
  let p = Schema.project schema_abc [ "c"; "a" ] in
  check Alcotest.(list string) "projected order" [ "c"; "a" ] (Schema.names p)

let test_schema_union_compatible () =
  let other =
    Schema.make
      [
        { Schema.name = "x"; ty = Value.Tint };
        { Schema.name = "y"; ty = Value.Tstring };
        { Schema.name = "z"; ty = Value.Tfloat };
      ]
  in
  checkb "compatible by type" true (Schema.union_compatible schema_abc other);
  checkb "not equal by name" false (Schema.equal schema_abc other);
  let shorter = Schema.make [ { Schema.name = "x"; ty = Value.Tint } ] in
  checkb "arity mismatch" false (Schema.union_compatible schema_abc shorter)

let test_schema_concat_clash () =
  checkb "clash raises" true
    (match Schema.concat schema_abc schema_abc with
    | _ -> false
    | exception Schema.Schema_error _ -> true)

(* ------------------------------------------------------------------ *)
(* Tuple                                                               *)

let t1 = Tuple.of_list [ Value.Int 1; Value.String "x"; Value.Float 2.5 ]
let t2 = Tuple.of_list [ Value.Int 1; Value.String "y"; Value.Float 0.5 ]

let test_tuple_basics () =
  checki "arity" 3 (Tuple.arity t1);
  checkb "get" true (Value.equal (Tuple.get t1 1) (Value.String "x"));
  checki "byte size" (8 + 1 + 8) (Tuple.byte_size t1)

let test_tuple_pad () =
  let padded = Tuple.make ~pad:100 [| Value.Int 1 |] in
  checki "padded size" 108 (Tuple.byte_size padded);
  checki "pad" 100 (Tuple.pad padded);
  checkb "pad ignored in compare" true
    (Tuple.equal padded (Tuple.make [| Value.Int 1 |]));
  Alcotest.check_raises "negative pad" (Invalid_argument "Tuple.make: negative pad")
    (fun () -> ignore (Tuple.make ~pad:(-1) [| Value.Int 1 |]))

let test_tuple_project_concat () =
  let p = Tuple.project t1 [ 2; 0 ] in
  checki "projected arity" 2 (Tuple.arity p);
  checkb "projected order" true (Value.equal (Tuple.get p 0) (Value.Float 2.5));
  let c = Tuple.concat t1 t2 in
  checki "concat arity" 6 (Tuple.arity c);
  checkb "concat right side" true (Value.equal (Tuple.get c 4) (Value.String "y"))

let test_tuple_compare () =
  checkb "lexicographic" true (Tuple.compare t1 t2 < 0);
  checki "compare_on shared prefix" 0 (Tuple.compare_on [| 0 |] t1 t2);
  checkb "compare_on differing" true (Tuple.compare_on [| 2 |] t1 t2 > 0);
  checkb "key extraction" true
    (Value.equal (Tuple.key t1 [| 1 |]).(0) (Value.String "x"))

let tuple_arb =
  QCheck.make
    ~print:(fun t -> Fmt.str "%a" Tuple.pp t)
    QCheck.Gen.(map Tuple.of_list (list_size (int_range 0 5) value_gen))

let prop_tuple_compare_consistent =
  QCheck.Test.make ~name:"Tuple.compare antisymmetric" ~count:300
    (QCheck.pair tuple_arb tuple_arb) (fun (a, b) ->
      Tuple.compare a b = -Tuple.compare b a)

let prop_tuple_equal_hash =
  QCheck.Test.make ~name:"Tuple equal implies same hash" ~count:300
    (QCheck.pair tuple_arb tuple_arb) (fun (a, b) ->
      (not (Tuple.equal a b)) || Tuple.hash a = Tuple.hash b)

let () =
  Alcotest.run "data"
    [
      ( "value",
        [
          Alcotest.test_case "numeric compare" `Quick test_value_compare_numeric;
          Alcotest.test_case "rank ordering" `Quick test_value_compare_ranks;
          Alcotest.test_case "equality and hash" `Quick test_value_equal_hash;
          Alcotest.test_case "byte sizes" `Quick test_value_sizes;
          Alcotest.test_case "coercions" `Quick test_value_coercions;
          Alcotest.test_case "printing" `Quick test_value_pp;
          QCheck_alcotest.to_alcotest prop_compare_antisym;
          QCheck_alcotest.to_alcotest prop_compare_trans;
          QCheck_alcotest.to_alcotest prop_equal_hash;
        ] );
      ( "schema",
        [
          Alcotest.test_case "basics" `Quick test_schema_basics;
          Alcotest.test_case "duplicates rejected" `Quick test_schema_duplicate;
          Alcotest.test_case "qualified lookup" `Quick test_schema_qualified_lookup;
          Alcotest.test_case "ambiguity" `Quick test_schema_ambiguous;
          Alcotest.test_case "project" `Quick test_schema_project;
          Alcotest.test_case "union compatibility" `Quick test_schema_union_compatible;
          Alcotest.test_case "concat clash" `Quick test_schema_concat_clash;
        ] );
      ( "tuple",
        [
          Alcotest.test_case "basics" `Quick test_tuple_basics;
          Alcotest.test_case "padding" `Quick test_tuple_pad;
          Alcotest.test_case "project/concat" `Quick test_tuple_project_concat;
          Alcotest.test_case "compare" `Quick test_tuple_compare;
          QCheck_alcotest.to_alcotest prop_tuple_compare_consistent;
          QCheck_alcotest.to_alcotest prop_tuple_equal_hash;
        ] );
    ]
