open Taqp_data
open Taqp_relational

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let parses s = Parser.expression s

let test_relation () =
  (match parses "emp" with
  | Ra.Relation { name = "emp"; alias = None } -> ()
  | _ -> Alcotest.fail "expected bare relation");
  match parses "emp as e" with
  | Ra.Relation { name = "emp"; alias = Some "e" } -> ()
  | _ -> Alcotest.fail "expected aliased relation"

let test_select () =
  match parses "select[a > 3](r)" with
  | Ra.Select (Predicate.Cmp (Predicate.Gt, Predicate.Attr "a", Predicate.Const (Value.Int 3)),
               Ra.Relation { name = "r"; _ }) -> ()
  | e -> Alcotest.failf "unexpected: %s" (Ra.to_string e)

let test_project () =
  match parses "project[x, r.y](r)" with
  | Ra.Project ([ "x"; "r.y" ], Ra.Relation _) -> ()
  | e -> Alcotest.failf "unexpected: %s" (Ra.to_string e)

let test_join () =
  match parses "join[l.k = r.k](l, r)" with
  | Ra.Join (Predicate.Cmp (Predicate.Eq, Predicate.Attr "l.k", Predicate.Attr "r.k"), _, _)
    -> ()
  | e -> Alcotest.failf "unexpected: %s" (Ra.to_string e)

let test_set_ops () =
  checkb "union" true
    (match parses "union(r, s)" with Ra.Union (_, _) -> true | _ -> false);
  checkb "difference" true
    (match parses "difference(r, s)" with Ra.Difference (_, _) -> true | _ -> false);
  checkb "intersect" true
    (match parses "intersect(r, s)" with Ra.Intersect (_, _) -> true | _ -> false)

let test_count_wrapper () =
  checkb "count(...) unwraps" true
    (Ra.equal (parses "count(select[a = 1](r))") (parses "select[a = 1](r)"))

let test_nesting () =
  let e = parses "select[a < 5](join[l.k = r.k](select[b > 1](l), r))" in
  checki "size" 5 (Ra.size e)

let test_predicate_precedence () =
  let p = Parser.predicate "a > 1 && b < 2 || c = 3" in
  (* && binds tighter than || *)
  match p with
  | Predicate.Or (Predicate.And (_, _), Predicate.Cmp (Predicate.Eq, _, _)) -> ()
  | _ -> Alcotest.failf "unexpected precedence: %s" (Fmt.str "%a" Predicate.pp p)

let test_predicate_arith_precedence () =
  match Parser.predicate "a + b * 2 = 7" with
  | Predicate.Cmp (Predicate.Eq, Predicate.Add (Predicate.Attr "a", Predicate.Mul (_, _)), _)
    -> ()
  | p -> Alcotest.failf "unexpected: %s" (Fmt.str "%a" Predicate.pp p)

let test_predicate_literals () =
  checkb "float" true
    (match Parser.predicate "a > 1.5" with
    | Predicate.Cmp (_, _, Predicate.Const (Value.Float 1.5)) -> true
    | _ -> false);
  checkb "negative int" true
    (match Parser.predicate "a > -4" with
    | Predicate.Cmp (_, _, Predicate.Const (Value.Int (-4))) -> true
    | _ -> false);
  checkb "string" true
    (match Parser.predicate "name = \"bob\"" with
    | Predicate.Cmp (_, _, Predicate.Const (Value.String "bob")) -> true
    | _ -> false);
  checkb "booleans" true (Parser.predicate "true" = Predicate.True);
  checkb "parenthesized predicate" true
    (match Parser.predicate "(a = 1) && !(b = 2)" with
    | Predicate.And (_, Predicate.Not _) -> true
    | _ -> false);
  checkb "parenthesized arithmetic" true
    (match Parser.predicate "(a + 1) * 2 >= b" with
    | Predicate.Cmp (Predicate.Ge, Predicate.Mul (Predicate.Add (_, _), _), _) -> true
    | _ -> false)

let test_errors () =
  let fails s =
    match Parser.expression s with
    | _ -> false
    | exception Parser.Parse_error _ -> true
  in
  checkb "unbalanced" true (fails "select[a>1](r");
  checkb "garbage tail" true (fails "r extra");
  checkb "missing bracket" true (fails "select a>1 (r)");
  checkb "empty" true (fails "");
  checkb "bad char" true (fails "r # s");
  checkb "unterminated string" true (fails "select[a = \"x](r)")

let test_error_position () =
  match Parser.expression "select[a >](r)" with
  | _ -> Alcotest.fail "expected parse error"
  | exception Parser.Parse_error { position; _ } ->
      checkb "position points into input" true (position >= 8 && position <= 14)

(* Round-trip: pp then parse yields the same AST. *)
let value_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Value.Int i) (int_range (-100) 100);
        map (fun b -> Value.Bool b) bool;
        return (Value.String "s");
      ])

let ident_gen = QCheck.Gen.(oneofl [ "aa"; "bb"; "cc"; "r.x"; "s.y" ])

let expr_gen =
  let open QCheck.Gen in
  let cmp_gen =
    map3
      (fun op a v -> Predicate.Cmp (op, Predicate.Attr a, Predicate.Const v))
      (oneofl Predicate.[ Eq; Ne; Lt; Le; Gt; Ge ])
      ident_gen value_gen
  in
  let pred_gen =
    sized (fun n ->
        fix
          (fun self n ->
            if n <= 1 then cmp_gen
            else
              frequency
                [
                  (3, cmp_gen);
                  (1, map2 (fun a b -> Predicate.And (a, b)) (self (n / 2)) (self (n / 2)));
                  (1, map2 (fun a b -> Predicate.Or (a, b)) (self (n / 2)) (self (n / 2)));
                  (1, map (fun a -> Predicate.Not a) (self (n - 1)));
                ])
          (min n 8))
  in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 1 then
            map2 (fun name alias -> Ra.Relation { name; alias })
              (oneofl [ "r"; "s"; "t" ])
              (oneofl [ None; Some "x1"; Some "x2" ])
          else
            frequency
              [
                (2, map2 (fun p c -> Ra.Select (p, c)) pred_gen (self (n / 2)));
                ( 1,
                  map2
                    (fun ns c -> Ra.Project (ns, c))
                    (list_size (int_range 1 3) ident_gen)
                    (self (n / 2)) );
                ( 2,
                  map3 (fun p l r -> Ra.Join (p, l, r)) pred_gen (self (n / 2))
                    (self (n / 2)) );
                (1, map2 (fun l r -> Ra.Union (l, r)) (self (n / 2)) (self (n / 2)));
                (1, map2 (fun l r -> Ra.Difference (l, r)) (self (n / 2)) (self (n / 2)));
                (1, map2 (fun l r -> Ra.Intersect (l, r)) (self (n / 2)) (self (n / 2)));
              ])
        (min n 12))

let prop_roundtrip =
  QCheck.Test.make ~name:"parse (print e) = e" ~count:300
    (QCheck.make ~print:Ra.to_string expr_gen) (fun e ->
      Ra.equal e (Parser.roundtrip e))

let () =
  Alcotest.run "parser"
    [
      ( "expressions",
        [
          Alcotest.test_case "relations" `Quick test_relation;
          Alcotest.test_case "select" `Quick test_select;
          Alcotest.test_case "project" `Quick test_project;
          Alcotest.test_case "join" `Quick test_join;
          Alcotest.test_case "set operators" `Quick test_set_ops;
          Alcotest.test_case "count wrapper" `Quick test_count_wrapper;
          Alcotest.test_case "nesting" `Quick test_nesting;
        ] );
      ( "predicates",
        [
          Alcotest.test_case "boolean precedence" `Quick test_predicate_precedence;
          Alcotest.test_case "arithmetic precedence" `Quick
            test_predicate_arith_precedence;
          Alcotest.test_case "literals" `Quick test_predicate_literals;
        ] );
      ( "errors",
        [
          Alcotest.test_case "malformed input" `Quick test_errors;
          Alcotest.test_case "error positions" `Quick test_error_position;
        ] );
      ("roundtrip", [ QCheck_alcotest.to_alcotest prop_roundtrip ]);
    ]
