(** Atomic attribute values stored in tuples.

    The 1989 prototype stored fixed-size tuples (200 bytes each in the
    experiments); [byte_size] reports the storage footprint a value
    contributes so that relations can reproduce the paper's blocking
    factor accounting. *)

type t =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool
  | Null

(** The type of a value, used for schema checking. *)
type ty = Tint | Tfloat | Tstring | Tbool

val type_of : t -> ty option
(** [type_of v] is the type of [v], or [None] for [Null]. *)

val ty_name : ty -> string

val compare : t -> t -> int
(** Total order: [Null] sorts first, then bools, ints and floats
    (numerically, cross-type), then strings. *)

val equal : t -> t -> bool

val hash : t -> int

val byte_size : t -> int
(** Storage footprint in bytes: 8 for numbers, 1 for bools and nulls,
    string length for strings. *)

val is_null : t -> bool

val to_int : t -> int option
val to_float : t -> float option
(** Numeric coercions; [Int] coerces to float, not vice versa. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
