type attribute = { name : string; ty : Value.ty }

type t = { attrs : attribute array }

exception Schema_error of string

let error fmt = Fmt.kstr (fun s -> raise (Schema_error s)) fmt

let make attrs =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun a ->
      if Hashtbl.mem seen a.name then error "duplicate attribute %s" a.name;
      Hashtbl.add seen a.name ())
    attrs;
  { attrs = Array.of_list attrs }

let attrs t = Array.to_list t.attrs
let arity t = Array.length t.attrs
let names t = List.map (fun a -> a.name) (attrs t)

let base_name name =
  match String.rindex_opt name '.' with
  | None -> name
  | Some i -> String.sub name (i + 1) (String.length name - i - 1)

let find t name =
  let exact = ref [] and by_base = ref [] in
  Array.iteri
    (fun i a ->
      if String.equal a.name name then exact := i :: !exact
      else if String.equal (base_name a.name) name then by_base := i :: !by_base)
    t.attrs;
  match (!exact, !by_base) with
  | [ i ], _ -> i
  | [], [ i ] -> i
  | [], [] -> error "unknown attribute %s" name
  | _, _ -> error "ambiguous attribute %s" name

let mem t name = match find t name with _ -> true | exception Schema_error _ -> false

let ty_at t i = t.attrs.(i).ty

let project t names =
  make (List.map (fun n -> t.attrs.(find t n)) names)

let qualify r t =
  let requalify a =
    if String.contains a.name '.' then a else { a with name = r ^ "." ^ a.name }
  in
  { attrs = Array.map requalify t.attrs }

let concat a b = make (attrs a @ attrs b)

let union_compatible a b =
  arity a = arity b
  && List.for_all2 (fun x y -> x.ty = y.ty) (attrs a) (attrs b)

let equal a b =
  arity a = arity b
  && List.for_all2
       (fun x y -> String.equal x.name y.name && x.ty = y.ty)
       (attrs a) (attrs b)

let pp ppf t =
  let pp_attr ppf a = Fmt.pf ppf "%s:%s" a.name (Value.ty_name a.ty) in
  Fmt.pf ppf "(%a)" Fmt.(list ~sep:comma pp_attr) (attrs t)
