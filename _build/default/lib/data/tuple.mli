(** Tuples: immutable arrays of values, interpreted against a schema.

    Tuples carry an optional [pad] so a logically small record can occupy
    the paper's fixed 200-byte slots; [byte_size] includes the padding. *)

type t

val make : ?pad:int -> Value.t array -> t
(** [make ?pad vs] is a tuple with fields [vs] and [pad] extra bytes of
    storage footprint (default 0). @raise Invalid_argument if pad < 0. *)

val of_list : ?pad:int -> Value.t list -> t

val arity : t -> int
val get : t -> int -> Value.t
val fields : t -> Value.t array
(** A fresh copy of the field array. *)

val pad : t -> int

val byte_size : t -> int
(** Sum of field sizes plus padding. *)

val project : t -> int list -> t
(** Keep the fields at the given positions, in the given order.
    Padding is dropped: projected tuples are re-packed. *)

val concat : t -> t -> t
(** Field-wise concatenation (join output); pads are summed. *)

val compare : t -> t -> int
(** Lexicographic by field, using {!Value.compare}; padding ignored. *)

val equal : t -> t -> bool
val hash : t -> int

val compare_on : int array -> t -> t -> int
(** [compare_on key a b] compares only the fields at positions [key]. *)

val key : t -> int array -> Value.t array
(** Extract the values at the given positions. *)

val pp : Format.formatter -> t -> unit
