type t = { fields : Value.t array; pad : int }

let make ?(pad = 0) fields =
  if pad < 0 then invalid_arg "Tuple.make: negative pad";
  { fields; pad }

let of_list ?pad vs = make ?pad (Array.of_list vs)

let arity t = Array.length t.fields
let get t i = t.fields.(i)
let fields t = Array.copy t.fields
let pad t = t.pad

let byte_size t =
  Array.fold_left (fun acc v -> acc + Value.byte_size v) t.pad t.fields

let project t positions =
  make (Array.of_list (List.map (fun i -> t.fields.(i)) positions))

let concat a b =
  { fields = Array.append a.fields b.fields; pad = a.pad + b.pad }

let compare a b =
  let na = arity a and nb = arity b in
  let rec go i =
    if i >= na || i >= nb then Int.compare na nb
    else
      let c = Value.compare a.fields.(i) b.fields.(i) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let equal a b = compare a b = 0

let hash t =
  Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 7 t.fields

let compare_on key a b =
  let rec go i =
    if i >= Array.length key then 0
    else
      let k = key.(i) in
      let c = Value.compare a.fields.(k) b.fields.(k) in
      if c <> 0 then c else go (i + 1)
  in
  go 0

let key t positions = Array.map (fun i -> t.fields.(i)) positions

let pp ppf t =
  Fmt.pf ppf "<%a>" Fmt.(array ~sep:comma Value.pp) t.fields
