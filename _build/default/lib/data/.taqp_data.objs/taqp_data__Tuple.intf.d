lib/data/tuple.mli: Format Value
