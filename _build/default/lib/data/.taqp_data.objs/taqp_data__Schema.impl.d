lib/data/schema.ml: Array Fmt Hashtbl List String Value
