lib/data/tuple.ml: Array Fmt Int List Value
