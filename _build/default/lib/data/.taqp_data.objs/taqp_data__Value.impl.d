lib/data/value.ml: Bool Float Fmt Hashtbl Int String
