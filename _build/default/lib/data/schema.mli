(** Relation schemas: ordered lists of named, typed attributes.

    Attribute names may be qualified ("emp.dno"); [find] resolves an
    unqualified reference against qualified columns when unambiguous. *)

type attribute = { name : string; ty : Value.ty }

type t

exception Schema_error of string

val make : attribute list -> t
(** @raise Schema_error on duplicate attribute names. *)

val attrs : t -> attribute list
val arity : t -> int
val names : t -> string list

val find : t -> string -> int
(** Position of attribute [name]; an unqualified name matches a qualified
    column ("dno" matches "emp.dno") when exactly one column does.
    @raise Schema_error when the name is missing or ambiguous. *)

val mem : t -> string -> bool

val ty_at : t -> int -> Value.ty

val project : t -> string list -> t
(** Schema restricted to the given attributes, in the given order. *)

val qualify : string -> t -> t
(** [qualify r s] prefixes every unqualified attribute with ["r."]. *)

val concat : t -> t -> t
(** Schema of a product/join result. @raise Schema_error on clashes. *)

val union_compatible : t -> t -> bool
(** Same arity and pairwise-equal attribute types (names may differ). *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
