type t =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool
  | Null

type ty = Tint | Tfloat | Tstring | Tbool

let type_of = function
  | Int _ -> Some Tint
  | Float _ -> Some Tfloat
  | String _ -> Some Tstring
  | Bool _ -> Some Tbool
  | Null -> None

let ty_name = function
  | Tint -> "int"
  | Tfloat -> "float"
  | Tstring -> "string"
  | Tbool -> "bool"

(* Rank used to order values of distinct kinds; numerics share a rank so
   that cross-type numeric comparison is consistent with [equal]. *)
let rank = function
  | Null -> 0
  | Bool _ -> 1
  | Int _ | Float _ -> 2
  | String _ -> 3

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Bool x, Bool y -> Bool.compare x y
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Int x, Float y -> Float.compare (float_of_int x) y
  | Float x, Int y -> Float.compare x (float_of_int y)
  | String x, String y -> String.compare x y
  | _, _ -> Int.compare (rank a) (rank b)

let equal a b = compare a b = 0

let hash = function
  | Null -> 17
  | Bool b -> if b then 31 else 37
  | Int i -> Hashtbl.hash (float_of_int i)
  | Float f -> Hashtbl.hash f
  | String s -> Hashtbl.hash s

let byte_size = function
  | Int _ | Float _ -> 8
  | Bool _ | Null -> 1
  | String s -> String.length s

let is_null = function Null -> true | Int _ | Float _ | String _ | Bool _ -> false

let to_int = function
  | Int i -> Some i
  | Float _ | String _ | Bool _ | Null -> None

let to_float = function
  | Int i -> Some (float_of_int i)
  | Float f -> Some f
  | String _ | Bool _ | Null -> None

let pp ppf = function
  | Int i -> Fmt.int ppf i
  | Float f -> Fmt.float ppf f
  | String s -> Fmt.pf ppf "%S" s
  | Bool b -> Fmt.bool ppf b
  | Null -> Fmt.string ppf "null"

let to_string v = Fmt.str "%a" pp v
