(** The simulated disk device: the single point through which the
    evaluation engine pays for work. Each primitive charges the clock
    at the ground-truth {!Cost_params} rate (with jitter) and bumps the
    matching {!Io_stats} counter. *)

type t

val create :
  ?params:Cost_params.t -> ?jitter_rng:Taqp_rng.Prng.t -> Clock.t -> t
(** [params] defaults to {!Cost_params.default}. Without [jitter_rng]
    charges are exact even if [params.jitter_sigma > 0]. *)

val clock : t -> Clock.t
val stats : t -> Io_stats.t
val params : t -> Cost_params.t

val read_block : t -> unit

val check_tuples : t -> n:int -> comparisons:int -> unit
(** Fetch-and-test [n] tuples, each evaluating [comparisons]
    comparisons. *)

val write_pages : t -> n:int -> unit
val write_temp_tuples : t -> n:int -> unit

val sort : t -> n:int -> unit
(** External sort of [n] tuples: charges c*n*log2(n) + c'*n. *)

val merge_tuples : t -> n:int -> unit
val output_tuples : t -> n:int -> unit
val estimator_update : t -> n:int -> unit

val stage_overhead : t -> unit
(** The fixed per-stage bookkeeping charge; also counts a stage. *)

val misc : t -> float -> unit
(** Charge an arbitrary duration (no jitter, no counter). *)

val merge_setup : t -> unit
(** Fixed cost of opening one pairing of sorted files for a merge. *)

val measure : t -> float -> float
(** What the device's OS clock reports for a [seconds]-long interval:
    quantized to {!Cost_params.clock_tick} — the measurement the
    adaptive cost formulas are trained on. *)
