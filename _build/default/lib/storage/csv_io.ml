open Taqp_data

exception Csv_error of { line : int; message : string }

let error line fmt = Fmt.kstr (fun message -> raise (Csv_error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Field splitting with minimal quoting support                        *)

let split_fields ~line s =
  let n = String.length s in
  let fields = ref [] in
  let buf = Buffer.create 32 in
  let i = ref 0 in
  let in_quotes = ref false in
  let flush () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  while !i < n do
    let c = s.[!i] in
    if !in_quotes then begin
      if c = '"' then
        if !i + 1 < n && s.[!i + 1] = '"' then begin
          Buffer.add_char buf '"';
          incr i
        end
        else in_quotes := false
      else Buffer.add_char buf c
    end
    else if c = '"' then
      if Buffer.length buf = 0 then in_quotes := true
      else error line "unexpected quote mid-field"
    else if c = ',' then flush ()
    else Buffer.add_char buf c;
    incr i
  done;
  if !in_quotes then error line "unterminated quoted field";
  flush ();
  List.rev !fields

let needs_quoting s =
  String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s

let quote s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

(* ------------------------------------------------------------------ *)
(* Header / values                                                     *)

let ty_of_string line = function
  | "int" -> Value.Tint
  | "float" -> Value.Tfloat
  | "string" -> Value.Tstring
  | "bool" -> Value.Tbool
  | other -> error line "unknown type %S" other

let schema_of_header header =
  let columns = split_fields ~line:1 header in
  if columns = [ "" ] then error 1 "empty header";
  Schema.make
    (List.map
       (fun col ->
         match String.rindex_opt col ':' with
         | None -> error 1 "header column %S lacks a :type suffix" col
         | Some i ->
             let name = String.sub col 0 i in
             let ty =
               ty_of_string 1 (String.sub col (i + 1) (String.length col - i - 1))
             in
             if name = "" then error 1 "empty column name";
             { Schema.name; ty })
       columns)

let value_of_string ~line ty raw =
  if raw = "" then Value.Null
  else
    match ty with
    | Value.Tint -> (
        match int_of_string_opt raw with
        | Some v -> Value.Int v
        | None -> error line "not an int: %S" raw)
    | Value.Tfloat -> (
        match float_of_string_opt raw with
        | Some v -> Value.Float v
        | None -> error line "not a float: %S" raw)
    | Value.Tstring -> Value.String raw
    | Value.Tbool -> (
        match String.lowercase_ascii raw with
        | "t" | "true" | "1" -> Value.Bool true
        | "f" | "false" | "0" -> Value.Bool false
        | _ -> error line "not a bool: %S" raw)

let string_of_value = function
  | Value.Null -> ""
  | Value.Int v -> string_of_int v
  | Value.Float v -> Fmt.str "%.17g" v
  | Value.String s -> quote s
  | Value.Bool b -> if b then "true" else "false"

(* ------------------------------------------------------------------ *)
(* Save / load                                                         *)

let save file path =
  let schema = Heap_file.schema file in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (String.concat ","
           (List.map
              (fun (a : Schema.attribute) -> a.name ^ ":" ^ Value.ty_name a.ty)
              (Schema.attrs schema)));
      output_char oc '\n';
      Heap_file.iter
        (fun t ->
          let cells =
            List.init (Tuple.arity t) (fun i -> string_of_value (Tuple.get t i))
          in
          output_string oc (String.concat "," cells);
          output_char oc '\n')
        file)

let load ?block_bytes ?tuple_bytes path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header =
        match In_channel.input_line ic with
        | Some h -> h
        | None -> error 1 "empty file"
      in
      let schema = schema_of_header header in
      let types = List.map (fun (a : Schema.attribute) -> a.ty) (Schema.attrs schema) in
      let arity = Schema.arity schema in
      let rec rows acc line =
        match In_channel.input_line ic with
        | None -> List.rev acc
        | Some "" -> rows acc (line + 1)
        | Some raw ->
            let cells = split_fields ~line raw in
            if List.length cells <> arity then
              error line "expected %d fields, found %d" arity (List.length cells);
            let values =
              List.map2 (fun ty cell -> value_of_string ~line ty cell) types cells
            in
            rows (Tuple.of_list values :: acc) (line + 1)
      in
      Heap_file.create ?block_bytes ?tuple_bytes ~schema (rows [] 2))

let load_dir ?block_bytes ?tuple_bytes dir =
  let catalog = Catalog.create () in
  Array.iter
    (fun entry ->
      if Filename.check_suffix entry ".csv" then begin
        let name = Filename.remove_extension entry in
        Catalog.add catalog name
          (load ?block_bytes ?tuple_bytes (Filename.concat dir entry))
      end)
    (Array.of_list (List.sort String.compare (Array.to_list (Sys.readdir dir))));
  catalog
