type t = {
  clock : Clock.t;
  params : Cost_params.t;
  jitter_rng : Taqp_rng.Prng.t option;
  stats : Io_stats.t;
}

let create ?(params = Cost_params.default) ?jitter_rng clock =
  { clock; params; jitter_rng; stats = Io_stats.create () }

let clock t = t.clock
let stats t = t.stats
let params t = t.params

let jitter t =
  match t.jitter_rng with
  | None -> 1.0
  | Some rng -> Taqp_rng.Prng.lognormal_factor rng t.params.jitter_sigma

let charge t cost = Clock.charge t.clock (cost *. jitter t)

let read_block t =
  t.stats.blocks_read <- t.stats.blocks_read + 1;
  charge t t.params.block_read

let check_tuples t ~n ~comparisons =
  if n > 0 then begin
    t.stats.tuples_checked <- t.stats.tuples_checked + n;
    let per =
      t.params.tuple_check_base
      +. (float_of_int comparisons *. t.params.per_comparison)
    in
    charge t (float_of_int n *. per)
  end

let write_pages t ~n =
  if n > 0 then begin
    t.stats.pages_written <- t.stats.pages_written + n;
    charge t (float_of_int n *. t.params.page_write)
  end

let write_temp_tuples t ~n =
  if n > 0 then begin
    t.stats.temp_tuples_written <- t.stats.temp_tuples_written + n;
    charge t (float_of_int n *. t.params.temp_tuple_write)
  end

let sort t ~n =
  if n > 0 then begin
    t.stats.tuples_sorted <- t.stats.tuples_sorted + n;
    let fn = float_of_int n in
    let logn = if n > 1 then log (float_of_int n) /. log 2.0 else 1.0 in
    charge t
      ((t.params.sort_per_nlogn *. fn *. logn) +. (t.params.sort_per_tuple *. fn))
  end

let merge_tuples t ~n =
  if n > 0 then begin
    t.stats.tuples_merged <- t.stats.tuples_merged + n;
    charge t (float_of_int n *. t.params.merge_per_tuple)
  end

let output_tuples t ~n =
  if n > 0 then begin
    t.stats.tuples_output <- t.stats.tuples_output + n;
    charge t (float_of_int n *. t.params.output_per_tuple)
  end

let estimator_update t ~n =
  if n > 0 then charge t (float_of_int n *. t.params.estimator_per_tuple)

let stage_overhead t =
  t.stats.stages <- t.stats.stages + 1;
  charge t t.params.stage_overhead

let misc t cost = Clock.charge t.clock cost

let merge_setup t = charge t t.params.merge_setup

let measure t seconds =
  let tick = t.params.clock_tick in
  if tick <= 0.0 then seconds
  else Float.max 0.0 (Float.round (seconds /. tick) *. tick)
