(** Counters of simulated device activity, accumulated per query run.
    The "blocks" column of the paper's tables is [blocks_read]. *)

type t = {
  mutable blocks_read : int;
  mutable tuples_checked : int;
  mutable pages_written : int;
  mutable temp_tuples_written : int;
  mutable tuples_sorted : int;
  mutable tuples_merged : int;
  mutable tuples_output : int;
  mutable stages : int;
}

val create : unit -> t
val reset : t -> unit
val copy : t -> t

val diff : t -> t -> t
(** [diff later earlier]: activity between two snapshots. *)

val pp : Format.formatter -> t -> unit
