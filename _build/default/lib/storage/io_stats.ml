type t = {
  mutable blocks_read : int;
  mutable tuples_checked : int;
  mutable pages_written : int;
  mutable temp_tuples_written : int;
  mutable tuples_sorted : int;
  mutable tuples_merged : int;
  mutable tuples_output : int;
  mutable stages : int;
}

let create () =
  {
    blocks_read = 0;
    tuples_checked = 0;
    pages_written = 0;
    temp_tuples_written = 0;
    tuples_sorted = 0;
    tuples_merged = 0;
    tuples_output = 0;
    stages = 0;
  }

let reset t =
  t.blocks_read <- 0;
  t.tuples_checked <- 0;
  t.pages_written <- 0;
  t.temp_tuples_written <- 0;
  t.tuples_sorted <- 0;
  t.tuples_merged <- 0;
  t.tuples_output <- 0;
  t.stages <- 0

let copy t =
  {
    blocks_read = t.blocks_read;
    tuples_checked = t.tuples_checked;
    pages_written = t.pages_written;
    temp_tuples_written = t.temp_tuples_written;
    tuples_sorted = t.tuples_sorted;
    tuples_merged = t.tuples_merged;
    tuples_output = t.tuples_output;
    stages = t.stages;
  }

let diff later earlier =
  {
    blocks_read = later.blocks_read - earlier.blocks_read;
    tuples_checked = later.tuples_checked - earlier.tuples_checked;
    pages_written = later.pages_written - earlier.pages_written;
    temp_tuples_written = later.temp_tuples_written - earlier.temp_tuples_written;
    tuples_sorted = later.tuples_sorted - earlier.tuples_sorted;
    tuples_merged = later.tuples_merged - earlier.tuples_merged;
    tuples_output = later.tuples_output - earlier.tuples_output;
    stages = later.stages - earlier.stages;
  }

let pp ppf t =
  Format.fprintf ppf
    "blocks=%d checked=%d pages_out=%d temp=%d sorted=%d merged=%d out=%d stages=%d"
    t.blocks_read t.tuples_checked t.pages_written t.temp_tuples_written
    t.tuples_sorted t.tuples_merged t.tuples_output t.stages
