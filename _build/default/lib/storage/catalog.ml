type t = (string, Heap_file.t) Hashtbl.t

let create () = Hashtbl.create 16

let add t name file =
  if Hashtbl.mem t name then
    raise (Heap_file.Storage_error ("relation already exists: " ^ name));
  Hashtbl.replace t name file

let replace t name file = Hashtbl.replace t name file
let find t name = Hashtbl.find t name
let find_opt t name = Hashtbl.find_opt t name
let mem t name = Hashtbl.mem t name
let remove t name = Hashtbl.remove t name
let names t = List.sort String.compare (Hashtbl.fold (fun k _ acc -> k :: acc) t [])

let of_list bindings =
  let t = create () in
  List.iter (fun (name, file) -> add t name file) bindings;
  t
