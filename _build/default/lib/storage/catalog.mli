(** The database catalog: named base relations. *)

type t

val create : unit -> t

val add : t -> string -> Heap_file.t -> unit
(** @raise Heap_file.Storage_error if the name is already bound. *)

val replace : t -> string -> Heap_file.t -> unit

val find : t -> string -> Heap_file.t
(** @raise Not_found *)

val find_opt : t -> string -> Heap_file.t option
val mem : t -> string -> bool
val remove : t -> string -> unit
val names : t -> string list
(** Sorted. *)

val of_list : (string * Heap_file.t) list -> t
