(** CSV import/export of relations — the CLI's storage format.

    The first line is a header of [name:type] columns (types: int,
    float, string, bool). Values: empty cell = null, [t]/[f] or
    [true]/[false] for booleans, quoted strings when they contain
    commas, quotes or newlines. *)

open Taqp_data

exception Csv_error of { line : int; message : string }

val save : Heap_file.t -> string -> unit
(** Write the relation to [path]. Padding is not stored (it is
    recomputed from the heap-file geometry on load). *)

val load :
  ?block_bytes:int -> ?tuple_bytes:int -> string -> Heap_file.t
(** Read a relation from [path]; geometry defaults to the paper's
    (1024-byte blocks, 200-byte tuples). Tuples are packed in file
    order. @raise Csv_error on malformed input;
    @raise Sys_error on I/O failure. *)

val load_dir :
  ?block_bytes:int -> ?tuple_bytes:int -> string -> Catalog.t
(** Load every [*.csv] in a directory as a relation named by its
    basename (without extension). *)

val schema_of_header : string -> Schema.t
(** Parse a header line (exposed for tests).
    @raise Csv_error on bad syntax. *)
