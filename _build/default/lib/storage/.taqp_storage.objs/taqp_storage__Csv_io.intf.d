lib/storage/csv_io.mli: Catalog Heap_file Schema Taqp_data
