lib/storage/device.ml: Clock Cost_params Float Io_stats Taqp_rng
