lib/storage/clock.ml: Sys Unix
