lib/storage/catalog.mli: Heap_file
