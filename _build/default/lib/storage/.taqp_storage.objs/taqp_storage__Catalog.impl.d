lib/storage/catalog.ml: Hashtbl Heap_file List String
