lib/storage/clock.mli:
