lib/storage/cost_params.mli: Format
