lib/storage/device.mli: Clock Cost_params Io_stats Taqp_rng
