lib/storage/csv_io.ml: Array Buffer Catalog Filename Fmt Fun Heap_file In_channel List Schema String Sys Taqp_data Tuple Value
