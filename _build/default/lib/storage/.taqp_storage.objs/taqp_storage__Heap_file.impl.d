lib/storage/heap_file.ml: Array Device Fmt Int List Schema Taqp_data Tuple Value
