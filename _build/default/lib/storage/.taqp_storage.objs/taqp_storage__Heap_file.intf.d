lib/storage/heap_file.mli: Device Schema Taqp_data Tuple
