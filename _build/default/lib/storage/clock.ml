type deadline_mode = [ `Abort | `Observe ]

type kind = Virtual of { mutable t : float } | Wall of { start : float }

type t = {
  kind : kind;
  mutable deadline : float option;
  mutable mode : deadline_mode;
}

exception Deadline_exceeded of { now : float; deadline : float }

let monotonic () = Unix.gettimeofday ()

let create_virtual () =
  { kind = Virtual { t = 0.0 }; deadline = None; mode = `Observe }

let create_wall () =
  { kind = Wall { start = monotonic () }; deadline = None; mode = `Observe }

let is_virtual t = match t.kind with Virtual _ -> true | Wall _ -> false

let now t =
  match t.kind with
  | Virtual v -> v.t
  | Wall w -> monotonic () -. w.start

let check_deadline t =
  match (t.deadline, t.mode) with
  | Some d, `Abort when now t > d ->
      raise (Deadline_exceeded { now = now t; deadline = d })
  | _, _ -> ()

let charge t dt =
  if dt < 0.0 then invalid_arg "Clock.charge: negative charge";
  match t.kind with
  | Virtual v -> (
      match (t.deadline, t.mode) with
      | Some d, `Abort when v.t +. dt > d ->
          (* The timer interrupt fires mid-operation, exactly at the
             deadline: the remainder of the charge is never performed. *)
          v.t <- d;
          raise (Deadline_exceeded { now = d; deadline = d })
      | _, _ -> v.t <- v.t +. dt)
  | Wall _ -> check_deadline t

let arm t ~mode ~at =
  t.deadline <- Some at;
  t.mode <- mode

let disarm t = t.deadline <- None

let deadline t = t.deadline

let remaining t =
  match t.deadline with None -> None | Some d -> Some (d -. now t)

let expired t = match t.deadline with None -> false | Some d -> now t > d

let sleep_until t at =
  match t.kind with
  | Virtual v -> if at > v.t then v.t <- at
  | Wall _ ->
      while now t < at do
        ignore (Sys.opaque_identity ())
      done
