(** Sampling-plan knobs (the implementation-decision rows of the
    paper's Figure 3.2). *)

type unit_kind =
  | Cluster  (** disk blocks are the sample units — the paper's choice *)
  | Simple_random
      (** individual tuples are the units; each tuple costs a block
          read, which is why the paper prefers cluster sampling *)

type fulfillment =
  | Full
      (** at stage s, evaluate every cross-stage combination of new and
          old samples (Figure 4.5) — most use of the data, cost grows
          with the stage count *)
  | Partial
      (** evaluate only the new samples against each other — cheap
          stages, less use of the data ([HoOT 88a]) *)

type t = { unit_kind : unit_kind; fulfillment : fulfillment }

val default : t
(** Cluster sampling with full fulfillment, as in the prototype. *)

val pp : Format.formatter -> t -> unit
