type t = {
  n_units : int;
  rng : Taqp_rng.Prng.t;
  mutable stages_rev : int list list;
  drawn_set : (int, unit) Hashtbl.t;
  mutable drawn : int;
}

let create ~n_units rng =
  if n_units < 0 then invalid_arg "Stage_set.create: n_units < 0";
  { n_units; rng; stages_rev = []; drawn_set = Hashtbl.create 64; drawn = 0 }

let n_units t = t.n_units
let drawn t = t.drawn
let remaining t = t.n_units - t.drawn
let exhausted t = t.drawn >= t.n_units
let stages t = List.length t.stages_rev

let draw_stage t ~k =
  if k < 0 then invalid_arg "Stage_set.draw_stage: k < 0";
  let k = Int.min k (remaining t) in
  let fresh =
    Taqp_rng.Sample.from_excluding t.rng ~k ~n:t.n_units
      ~excluded:(Hashtbl.mem t.drawn_set) ~excluded_count:t.drawn
  in
  List.iter (fun u -> Hashtbl.add t.drawn_set u ()) fresh;
  t.drawn <- t.drawn + k;
  t.stages_rev <- fresh :: t.stages_rev;
  fresh

let stage_units t i =
  let n = stages t in
  if i < 1 || i > n then invalid_arg "Stage_set.stage_units: out of range";
  List.nth t.stages_rev (n - i)

let stage_size t i = List.length (stage_units t i)

let all_units t = List.concat (List.rev t.stages_rev)

let cumulative_sizes t =
  let sizes = List.rev_map List.length t.stages_rev in
  let acc = ref 0 in
  Array.of_list (List.map (fun s -> acc := !acc + s; !acc) sizes)

let fraction_drawn t =
  if t.n_units = 0 then 1.0
  else float_of_int t.drawn /. float_of_int t.n_units
