type unit_kind = Cluster | Simple_random
type fulfillment = Full | Partial
type t = { unit_kind : unit_kind; fulfillment : fulfillment }

let default = { unit_kind = Cluster; fulfillment = Full }

let pp ppf t =
  Format.fprintf ppf "%s/%s"
    (match t.unit_kind with Cluster -> "cluster" | Simple_random -> "srs")
    (match t.fulfillment with Full -> "full" | Partial -> "partial")
