(** Per-dimension sample bookkeeping across stages.

    One [Stage_set.t] tracks which sample units (disk blocks under the
    cluster plan, tuples under simple random sampling) have been drawn
    from one operand relation, stage by stage, without replacement —
    the SAMPLE-SET / NEW-SAMPLE-SET variables of Figure 3.1. *)

type t

val create : n_units:int -> Taqp_rng.Prng.t -> t
(** A population of [n_units] units, none drawn yet. An empty
    population (0 units) is legal and immediately exhausted.
    @raise Invalid_argument if [n_units < 0]. *)

val n_units : t -> int

val draw_stage : t -> k:int -> int list
(** Draw [k] fresh units uniformly from those not yet drawn and record
    them as the next stage. [k] is clamped to the number remaining;
    the returned list (possibly shorter than [k]) is the NEW-SAMPLE-SET.
    @raise Invalid_argument if [k < 0]. *)

val stages : t -> int
val drawn : t -> int
val remaining : t -> int
val exhausted : t -> bool

val stage_units : t -> int -> int list
(** Units drawn at stage [i] (1-based). @raise Invalid_argument if out
    of range. *)

val stage_size : t -> int -> int
val all_units : t -> int list
(** Every unit drawn so far, in draw order. *)

val cumulative_sizes : t -> int array
(** [cumulative_sizes t].(i) = units drawn in stages 1..i+1 — the
    N_{j,i} of the paper's cost formulas. *)

val fraction_drawn : t -> float
