lib/sampling/fulfillment.ml: Array Int List
