lib/sampling/plan.mli: Format
