lib/sampling/stage_set.ml: Array Hashtbl Int List Taqp_rng
