lib/sampling/fulfillment.mli:
