lib/sampling/stage_set.mli: Taqp_rng
