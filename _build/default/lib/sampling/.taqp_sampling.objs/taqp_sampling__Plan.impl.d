lib/sampling/plan.ml: Format
