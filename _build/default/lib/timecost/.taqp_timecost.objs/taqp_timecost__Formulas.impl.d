lib/timecost/formulas.ml: Array Format
