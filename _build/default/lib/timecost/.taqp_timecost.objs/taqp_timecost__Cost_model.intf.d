lib/timecost/cost_model.mli: Formulas
