lib/timecost/cost_model.ml: Array Float Formulas Hashtbl Int Least_squares List Taqp_stats
