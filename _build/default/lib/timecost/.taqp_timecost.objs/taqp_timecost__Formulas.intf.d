lib/timecost/formulas.mli: Format
