(** The adaptive time-cost model of a query: one independently fitted
    linear model per (operator node, step), re-estimated at run time
    from the per-step timings the executor records — Section 4's
    "adaptive time cost formulas".

    QCOST of a stage is the sum over nodes of {!predict} on the node's
    predicted stage measures. *)

type t

val create : ?adaptive:bool -> ?initial_scale:float -> unit -> t
(** [adaptive] false freezes the initial coefficients (the fixed-form
    ablation). [initial_scale] multiplies the designer initial
    coefficients (misfit experiments); default 1.0. *)

val adaptive : t -> bool

val register : t -> id:int -> Formulas.op_kind -> unit
(** Declare operator node [id] of the given kind.
    @raise Invalid_argument if [id] is already registered. *)

val kind : t -> id:int -> Formulas.op_kind
val ids : t -> int list

val predict : t -> id:int -> Formulas.measures -> float
(** Predicted seconds for the node on one stage's measures: the sum of
    its steps' predictions (each >= 0). *)

val predict_step : t -> id:int -> step:Formulas.step -> Formulas.measures -> float

val observe_step :
  t -> id:int -> step:Formulas.step -> Formulas.measures -> seconds:float -> unit
(** Feed one observed (measures, elapsed) pair for one step; no-op when
    not adaptive. @raise Invalid_argument for a step the node's kind
    does not have. *)

val step_coefficients : t -> id:int -> step:Formulas.step -> float array

val total : t -> (int * Formulas.measures) list -> float
(** Sum of predictions — QCOST for a stage plan. *)
