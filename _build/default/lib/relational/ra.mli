(** Relational-algebra expressions — the paper's query language.

    [COUNT(E)] queries take an arbitrary expression built from base
    relations with Select, Project, (theta-)Join, Union, Difference and
    Intersect. Union and Difference are never evaluated directly by the
    sampling estimator: the Principle of Inclusion and Exclusion
    rewrites them away (see {!Taqp_estimators.Inclusion_exclusion}). *)

open Taqp_data

type t =
  | Relation of { name : string; alias : string option }
  | Select of Predicate.t * t
  | Project of string list * t
  | Join of Predicate.t * t * t
  | Union of t * t
  | Difference of t * t
  | Intersect of t * t

exception Type_error of string

val relation : ?alias:string -> string -> t

val infer :
  lookup:(string -> Schema.t option) -> t -> Schema.t
(** Schema of the expression's result. Leaf schemas are qualified by the
    relation's alias (or name). Union/Difference/Intersect operands must
    be union-compatible; predicates must typecheck; projections must
    name existing attributes. @raise Type_error otherwise. *)

val infer_catalog : Taqp_storage.Catalog.t -> t -> Schema.t

val leaves : t -> (string * string) list
(** The operand-relation occurrences, left to right, as
    [(name, alias)] pairs — each occurrence is one dimension of the
    paper's point space (a self-join contributes two dimensions). *)

val relation_names : t -> string list
(** Distinct base-relation names, in first-use order. *)

val has_projection : t -> bool
val has_union_or_difference : t -> bool

val is_sjip : t -> bool
(** Only Select/Join/Intersect/Project over relations — the fragment the
    estimators handle natively. *)

val size : t -> int
(** Number of AST nodes. *)

val node_label : t -> string
(** Short operator name of the root, for traces and reports. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
