(** Immutable bulk-loaded B+-tree indexes over one attribute.

    The paper simplifies its cost formulas by assuming "no index files
    are used for any RA operation evaluation"; this module supplies the
    index so the assumption can be tested rather than taken — the
    benches use it to price what an {e indexed} exact evaluation would
    cost next to the sampling evaluator. (The sampling engine itself
    never uses indexes: cluster sampling reads uniformly random blocks
    by design.)

    The tree is built once over a heap file and maps key values to the
    positions (block, slot) of the tuples carrying them. Nodes are
    sized to hold [fanout] entries, one node per simulated disk block:
    a lookup charges one block read per level, plus one per distinct
    data block fetched. *)

open Taqp_data
open Taqp_storage

type t

val build : ?fanout:int -> attr:string -> Heap_file.t -> t
(** Index the heap file on [attr] (fanout defaults to 64 entries per
    node — a 1 KB block of key/pointer pairs).
    @raise Schema.Schema_error for an unknown attribute;
    @raise Invalid_argument if [fanout < 2]. *)

val attr : t -> string
val height : t -> int
(** Levels from root to leaves (0 for an empty index). *)

val n_keys : t -> int
(** Distinct keys indexed. *)

val lookup : ?device:Device.t -> t -> Value.t -> (int * int) list
(** Positions (block, slot) of the tuples whose attribute equals the
    key; charges one node read per level. Empty when absent. *)

val range :
  ?device:Device.t -> t -> ?lo:Value.t -> ?hi:Value.t -> unit ->
  (int * int) list
(** Positions of tuples with lo <= attr <= hi (either bound may be
    omitted); charges the root-to-leaf descent plus one node read per
    leaf traversed. *)

val select :
  ?device:Device.t -> t -> Heap_file.t -> ?lo:Value.t -> ?hi:Value.t ->
  unit -> Tuple.t array
(** Fetch the matching tuples via the index: the range scan plus one
    block read per {e distinct} data block touched — the quantity that
    makes an index win or lose against a full scan. *)
