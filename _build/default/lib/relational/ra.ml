open Taqp_data

type t =
  | Relation of { name : string; alias : string option }
  | Select of Predicate.t * t
  | Project of string list * t
  | Join of Predicate.t * t * t
  | Union of t * t
  | Difference of t * t
  | Intersect of t * t

exception Type_error of string

let type_error fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

let relation ?alias name = Relation { name; alias }

let infer ~lookup expr =
  let rec go = function
    | Relation { name; alias } -> (
        match lookup name with
        | None -> type_error "unknown relation %s" name
        | Some schema ->
            Schema.qualify (Option.value alias ~default:name) schema)
    | Select (pred, child) ->
        let schema = go child in
        (try Predicate.typecheck schema pred
         with Predicate.Type_error msg -> type_error "select: %s" msg);
        schema
    | Project (names, child) -> (
        let schema = go child in
        if names = [] then type_error "project: empty attribute list";
        try Schema.project schema names
        with Schema.Schema_error msg -> type_error "project: %s" msg)
    | Join (pred, l, r) ->
        let sl = go l and sr = go r in
        let schema =
          try Schema.concat sl sr
          with Schema.Schema_error msg ->
            type_error "join: %s (alias one side of a self-join)" msg
        in
        (try Predicate.typecheck schema pred
         with Predicate.Type_error msg -> type_error "join: %s" msg);
        schema
    | Union (l, r) | Difference (l, r) | Intersect (l, r) ->
        let sl = go l and sr = go r in
        if not (Schema.union_compatible sl sr) then
          type_error "operands are not union-compatible: %a vs %a" Schema.pp
            sl Schema.pp sr;
        sl
  in
  go expr

let infer_catalog catalog expr =
  infer
    ~lookup:(fun name ->
      Option.map Taqp_storage.Heap_file.schema
        (Taqp_storage.Catalog.find_opt catalog name))
    expr

let leaves expr =
  let rec go acc = function
    | Relation { name; alias } -> (name, Option.value alias ~default:name) :: acc
    | Select (_, c) | Project (_, c) -> go acc c
    | Join (_, l, r) | Union (l, r) | Difference (l, r) | Intersect (l, r) ->
        go (go acc l) r
  in
  List.rev (go [] expr)

let relation_names expr =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun (name, _) ->
      if Hashtbl.mem seen name then None
      else begin
        Hashtbl.add seen name ();
        Some name
      end)
    (leaves expr)

let rec has_projection = function
  | Relation _ -> false
  | Project (_, _) -> true
  | Select (_, c) -> has_projection c
  | Join (_, l, r) | Union (l, r) | Difference (l, r) | Intersect (l, r) ->
      has_projection l || has_projection r

let rec has_union_or_difference = function
  | Relation _ -> false
  | Union (_, _) | Difference (_, _) -> true
  | Select (_, c) | Project (_, c) -> has_union_or_difference c
  | Join (_, l, r) | Intersect (l, r) ->
      has_union_or_difference l || has_union_or_difference r

let is_sjip e = not (has_union_or_difference e)

let rec size = function
  | Relation _ -> 1
  | Select (_, c) | Project (_, c) -> 1 + size c
  | Join (_, l, r) | Union (l, r) | Difference (l, r) | Intersect (l, r) ->
      1 + size l + size r

let node_label = function
  | Relation { name; _ } -> name
  | Select (_, _) -> "select"
  | Project (_, _) -> "project"
  | Join (_, _, _) -> "join"
  | Union (_, _) -> "union"
  | Difference (_, _) -> "difference"
  | Intersect (_, _) -> "intersect"

let rec equal a b =
  match (a, b) with
  | Relation x, Relation y -> x.name = y.name && x.alias = y.alias
  | Select (p, c), Select (q, d) -> p = q && equal c d
  | Project (ns, c), Project (ms, d) -> ns = ms && equal c d
  | Join (p, l, r), Join (q, l', r') -> p = q && equal l l' && equal r r'
  | Union (l, r), Union (l', r')
  | Difference (l, r), Difference (l', r')
  | Intersect (l, r), Intersect (l', r') ->
      equal l l' && equal r r'
  | ( ( Relation _ | Select _ | Project _ | Join _ | Union _ | Difference _
      | Intersect _ ),
      _ ) ->
      false

let rec pp ppf = function
  | Relation { name; alias = None } -> Fmt.string ppf name
  | Relation { name; alias = Some a } -> Fmt.pf ppf "%s as %s" name a
  | Select (p, c) -> Fmt.pf ppf "select[%a](%a)" Predicate.pp p pp c
  | Project (names, c) ->
      Fmt.pf ppf "project[%a](%a)" Fmt.(list ~sep:comma string) names pp c
  | Join (p, l, r) -> Fmt.pf ppf "join[%a](%a, %a)" Predicate.pp p pp l pp r
  | Union (l, r) -> Fmt.pf ppf "union(%a, %a)" pp l pp r
  | Difference (l, r) -> Fmt.pf ppf "difference(%a, %a)" pp l pp r
  | Intersect (l, r) -> Fmt.pf ppf "intersect(%a, %a)" pp l pp r

let to_string e = Fmt.str "%a" pp e
