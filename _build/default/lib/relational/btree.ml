open Taqp_data
open Taqp_storage

(* Leaves hold (key, positions) entries sorted by key; internal nodes
   hold the separator key of each child (the smallest key below it). *)
type node =
  | Leaf of (Value.t * (int * int) list) array
  | Internal of Value.t array * node array

type t = { attr : string; fanout : int; root : node option; n_keys : int }

let build ?(fanout = 64) ~attr file =
  if fanout < 2 then invalid_arg "Btree.build: fanout < 2";
  let pos = Schema.find (Heap_file.schema file) attr in
  (* Collect (key, position) pairs in block order. *)
  let entries = ref [] in
  for b = Heap_file.n_blocks file - 1 downto 0 do
    let block = Heap_file.block file b in
    for s = Array.length block - 1 downto 0 do
      entries := (Tuple.get block.(s) pos, (b, s)) :: !entries
    done
  done;
  let sorted =
    List.stable_sort (fun (k1, _) (k2, _) -> Value.compare k1 k2) !entries
  in
  (* Group equal keys. *)
  let grouped =
    List.fold_left
      (fun acc (k, p) ->
        match acc with
        | (k', ps) :: rest when Value.equal k k' -> (k', p :: ps) :: rest
        | _ -> (k, [ p ]) :: acc)
      [] sorted
  in
  let grouped =
    List.rev_map (fun (k, ps) -> (k, List.rev ps)) grouped
  in
  let n_keys = List.length grouped in
  if n_keys = 0 then { attr; fanout; root = None; n_keys = 0 }
  else begin
    (* Bulk-load: chop a level's nodes into groups of [fanout]. *)
    let chunk l =
      let rec go acc current count = function
        | [] -> List.rev (List.rev current :: acc)
        | x :: rest ->
            if count = fanout then go (List.rev current :: acc) [ x ] 1 rest
            else go acc (x :: current) (count + 1) rest
      in
      go [] [] 0 l
    in
    let leaves =
      List.map (fun group -> Leaf (Array.of_list group)) (chunk grouped)
    in
    let min_key = function
      | Leaf entries -> fst entries.(0)
      | Internal (keys, _) -> keys.(0)
    in
    let rec up nodes =
      match nodes with
      | [ root ] -> root
      | _ ->
          up
            (List.map
               (fun group ->
                 let arr = Array.of_list group in
                 Internal (Array.map min_key arr, arr))
               (chunk nodes))
    in
    { attr; fanout; root = Some (up leaves); n_keys }
  end

let attr t = t.attr

let height t =
  let rec go = function
    | Leaf _ -> 1
    | Internal (_, children) -> 1 + go children.(0)
  in
  match t.root with None -> 0 | Some root -> go root

let n_keys t = t.n_keys

let charge_node device =
  match device with None -> () | Some d -> Device.read_block d

(* Index of the child that may contain [key]: the last child whose
   separator is <= key (or the first child). *)
let child_for keys key =
  let n = Array.length keys in
  let idx = ref 0 in
  for i = 1 to n - 1 do
    if Value.compare keys.(i) key <= 0 then idx := i
  done;
  !idx

let lookup ?device t key =
  let rec go node =
    charge_node device;
    match node with
    | Leaf entries -> (
        match
          Array.find_opt (fun (k, _) -> Value.equal k key) entries
        with
        | Some (_, ps) -> ps
        | None -> [])
    | Internal (keys, children) -> go children.(child_for keys key)
  in
  match t.root with None -> [] | Some root -> go root

let in_range ?lo ?hi k =
  (match lo with None -> true | Some l -> Value.compare k l >= 0)
  && match hi with None -> true | Some h -> Value.compare k h <= 0

let below_hi ?hi k =
  match hi with None -> true | Some h -> Value.compare k h <= 0

let range ?device t ?lo ?hi () =
  (* Collect leaves left to right, descending once and walking while the
     leaf's smallest key is within the upper bound. Each visited node
     charges one block read. *)
  let out = ref [] in
  let rec walk node =
    charge_node device;
    match node with
    | Leaf entries ->
        Array.iter
          (fun (k, ps) -> if in_range ?lo ?hi k then out := List.rev_append ps !out)
          entries;
        (* continue while the last key is still below hi *)
        below_hi ?hi (fst entries.(Array.length entries - 1))
    | Internal (keys, children) ->
        let start = match lo with None -> 0 | Some l -> child_for keys l in
        let continue = ref true in
        let i = ref start in
        while !continue && !i < Array.length children do
          continue := walk children.(!i);
          incr i
        done;
        (* propagate whether the scan may continue into our right sibling *)
        !continue
  in
  (match t.root with None -> () | Some root -> ignore (walk root));
  List.rev !out

let select ?device t file ?lo ?hi () =
  let positions = range ?device t ?lo ?hi () in
  (* Fetch each distinct data block once, in block order. *)
  let by_block = Hashtbl.create 64 in
  List.iter
    (fun (b, s) ->
      let slots = Option.value (Hashtbl.find_opt by_block b) ~default:[] in
      Hashtbl.replace by_block b (s :: slots))
    positions;
  let blocks = List.sort Int.compare (Hashtbl.fold (fun b _ acc -> b :: acc) by_block []) in
  let out = ref [] in
  List.iter
    (fun b ->
      (match device with None -> () | Some d -> Device.read_block d);
      let block = Heap_file.block file b in
      let slots = List.sort Int.compare (Hashtbl.find by_block b) in
      List.iter (fun s -> out := block.(s) :: !out) slots)
    blocks;
  Array.of_list (List.rev !out)
