open Taqp_data

exception Parse_error of { position : int; message : string }

type token =
  | Ident of string
  | Number_int of int
  | Number_float of float
  | Str of string
  | Lparen
  | Rparen
  | Lbracket
  | Rbracket
  | Comma
  | Dot
  | AndAnd
  | OrOr
  | Bang
  | CmpEq
  | CmpNe
  | CmpLt
  | CmpLe
  | CmpGt
  | CmpGe
  | Plus
  | Minus
  | Star
  | Slash
  | Eof

let fail position fmt =
  Fmt.kstr (fun message -> raise (Parse_error { position; message })) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let out = ref [] in
  let i = ref 0 in
  let push tok pos = out := (tok, pos) :: !out in
  while !i < n do
    let c = src.[!i] in
    let pos = !i in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char src.[!j] do
        incr j
      done;
      push (Ident (String.sub src !i (!j - !i))) pos;
      i := !j
    end
    else if is_digit c then begin
      let j = ref !i in
      while !j < n && is_digit src.[!j] do
        incr j
      done;
      (* A dot followed by a digit continues a float literal; a dot
         followed by a letter is attribute qualification. *)
      if !j < n && src.[!j] = '.' && !j + 1 < n && is_digit src.[!j + 1] then begin
        incr j;
        while !j < n && is_digit src.[!j] do
          incr j
        done;
        push (Number_float (float_of_string (String.sub src !i (!j - !i)))) pos
      end
      else push (Number_int (int_of_string (String.sub src !i (!j - !i)))) pos;
      i := !j
    end
    else if c = '"' then begin
      let buf = Buffer.create 16 in
      let j = ref (!i + 1) in
      let closed = ref false in
      while (not !closed) && !j < n do
        if src.[!j] = '"' then closed := true
        else begin
          if src.[!j] = '\\' && !j + 1 < n then incr j;
          Buffer.add_char buf src.[!j]
        end;
        incr j
      done;
      if not !closed then fail pos "unterminated string literal";
      push (Str (Buffer.contents buf)) pos;
      i := !j
    end
    else begin
      let two =
        if !i + 1 < n then Some (String.sub src !i 2) else None
      in
      match two with
      | Some "&&" ->
          push AndAnd pos;
          i := !i + 2
      | Some "||" ->
          push OrOr pos;
          i := !i + 2
      | Some "!=" ->
          push CmpNe pos;
          i := !i + 2
      | Some "<=" ->
          push CmpLe pos;
          i := !i + 2
      | Some ">=" ->
          push CmpGe pos;
          i := !i + 2
      | _ -> (
          incr i;
          match c with
          | '(' -> push Lparen pos
          | ')' -> push Rparen pos
          | '[' -> push Lbracket pos
          | ']' -> push Rbracket pos
          | ',' -> push Comma pos
          | '.' -> push Dot pos
          | '!' -> push Bang pos
          | '=' -> push CmpEq pos
          | '<' -> push CmpLt pos
          | '>' -> push CmpGt pos
          | '+' -> push Plus pos
          | '-' -> push Minus pos
          | '*' -> push Star pos
          | '/' -> push Slash pos
          | _ -> fail pos "unexpected character %C" c)
    end
  done;
  push Eof n;
  Array.of_list (List.rev !out)

(* ------------------------------------------------------------------ *)
(* Parser state: an index into the token array, so backtracking is a
   plain integer restore. *)

type state = { tokens : (token * int) array; mutable cursor : int }

let peek st = fst st.tokens.(st.cursor)
let pos st = snd st.tokens.(st.cursor)
let advance st = st.cursor <- st.cursor + 1

let expect st tok what =
  if peek st = tok then advance st else fail (pos st) "expected %s" what

let ident st =
  match peek st with
  | Ident name ->
      advance st;
      name
  | _ -> fail (pos st) "expected identifier"

(* Attribute names may be qualified: ident (. ident)* *)
let attr_name st =
  let base = ident st in
  let rec go acc =
    if peek st = Dot then begin
      advance st;
      go (acc ^ "." ^ ident st)
    end
    else acc
  in
  go base

(* ------------------------------------------------------------------ *)
(* Predicates                                                          *)

let cmp_of_token = function
  | CmpEq -> Some Predicate.Eq
  | CmpNe -> Some Predicate.Ne
  | CmpLt -> Some Predicate.Lt
  | CmpLe -> Some Predicate.Le
  | CmpGt -> Some Predicate.Gt
  | CmpGe -> Some Predicate.Ge
  | _ -> None

let rec parse_pred st = parse_or st

and parse_or st =
  let left = parse_and st in
  if peek st = OrOr then begin
    advance st;
    Predicate.Or (left, parse_or st)
  end
  else left

and parse_and st =
  let left = parse_factor st in
  if peek st = AndAnd then begin
    advance st;
    Predicate.And (left, parse_and st)
  end
  else left

and parse_factor st =
  match peek st with
  | Bang ->
      advance st;
      Predicate.Not (parse_factor st)
  | Ident "true" ->
      advance st;
      Predicate.True
  | Ident "false" ->
      advance st;
      Predicate.False
  | Lparen -> (
      (* Could be a parenthesized predicate or a parenthesized
         arithmetic expression starting a comparison; try the predicate
         reading first and fall back. *)
      let saved = st.cursor in
      match
        advance st;
        let p = parse_pred st in
        expect st Rparen "')'";
        p
      with
      | p when cmp_of_token (peek st) = None -> p
      | _ | (exception Parse_error _) ->
          st.cursor <- saved;
          parse_comparison st)
  | _ -> parse_comparison st

and parse_comparison st =
  let left = parse_arith st in
  match cmp_of_token (peek st) with
  | Some op ->
      advance st;
      let right = parse_arith st in
      Predicate.Cmp (op, left, right)
  | None -> fail (pos st) "expected comparison operator"

and parse_arith st =
  let left = parse_term st in
  let rec go acc =
    match peek st with
    | Plus ->
        advance st;
        go (Predicate.Add (acc, parse_term st))
    | Minus ->
        advance st;
        go (Predicate.Sub (acc, parse_term st))
    | _ -> acc
  in
  go left

and parse_term st =
  let left = parse_atom st in
  let rec go acc =
    match peek st with
    | Star ->
        advance st;
        go (Predicate.Mul (acc, parse_atom st))
    | Slash ->
        advance st;
        go (Predicate.Div (acc, parse_atom st))
    | _ -> acc
  in
  go left

and parse_atom st =
  match peek st with
  | Number_int v ->
      advance st;
      Predicate.Const (Value.Int v)
  | Number_float v ->
      advance st;
      Predicate.Const (Value.Float v)
  | Str s ->
      advance st;
      Predicate.Const (Value.String s)
  | Minus ->
      advance st;
      (match parse_atom st with
      | Predicate.Const (Value.Int v) -> Predicate.Const (Value.Int (-v))
      | Predicate.Const (Value.Float v) -> Predicate.Const (Value.Float (-.v))
      | e -> Predicate.Sub (Predicate.Const (Value.Int 0), e))
  | Ident "null" ->
      advance st;
      Predicate.Const Value.Null
  | Ident "true" ->
      advance st;
      Predicate.Const (Value.Bool true)
  | Ident "false" ->
      advance st;
      Predicate.Const (Value.Bool false)
  | Ident _ -> Predicate.Attr (attr_name st)
  | Lparen ->
      advance st;
      let e = parse_arith st in
      expect st Rparen "')'";
      e
  | _ -> fail (pos st) "expected value, attribute or '('"

(* ------------------------------------------------------------------ *)
(* RA expressions                                                      *)

let keywords =
  [ "select"; "project"; "join"; "union"; "difference"; "intersect"; "count"; "as" ]

let rec parse_expr st =
  match peek st with
  | Ident "select" ->
      advance st;
      expect st Lbracket "'['";
      let pred = parse_pred st in
      expect st Rbracket "']'";
      expect st Lparen "'('";
      let child = parse_expr st in
      expect st Rparen "')'";
      Ra.Select (pred, child)
  | Ident "project" ->
      advance st;
      expect st Lbracket "'['";
      let rec names acc =
        let n = attr_name st in
        if peek st = Comma then begin
          advance st;
          names (n :: acc)
        end
        else List.rev (n :: acc)
      in
      let ns = names [] in
      expect st Rbracket "']'";
      expect st Lparen "'('";
      let child = parse_expr st in
      expect st Rparen "')'";
      Ra.Project (ns, child)
  | Ident "join" ->
      advance st;
      expect st Lbracket "'['";
      let pred = parse_pred st in
      expect st Rbracket "']'";
      let l, r = parse_pair st in
      Ra.Join (pred, l, r)
  | Ident "union" ->
      advance st;
      let l, r = parse_pair st in
      Ra.Union (l, r)
  | Ident "difference" ->
      advance st;
      let l, r = parse_pair st in
      Ra.Difference (l, r)
  | Ident "intersect" ->
      advance st;
      let l, r = parse_pair st in
      Ra.Intersect (l, r)
  | Ident name when not (List.mem name keywords) ->
      advance st;
      let alias =
        match peek st with
        | Ident "as" ->
            advance st;
            Some (ident st)
        | _ -> None
      in
      Ra.Relation { name; alias }
  | _ -> fail (pos st) "expected an RA expression"

and parse_pair st =
  expect st Lparen "'('";
  let l = parse_expr st in
  expect st Comma "','";
  let r = parse_expr st in
  expect st Rparen "')'";
  (l, r)

let expression src =
  let st = { tokens = tokenize src; cursor = 0 } in
  let e =
    match peek st with
    | Ident "count" ->
        advance st;
        expect st Lparen "'('";
        let e = parse_expr st in
        expect st Rparen "')'";
        e
    | _ -> parse_expr st
  in
  expect st Eof "end of input";
  e

let predicate src =
  let st = { tokens = tokenize src; cursor = 0 } in
  let p = parse_pred st in
  expect st Eof "end of input";
  p

let roundtrip e = expression (Ra.to_string e)
