lib/relational/eval.mli: Catalog Device Heap_file Ra Taqp_data Taqp_storage Tuple
