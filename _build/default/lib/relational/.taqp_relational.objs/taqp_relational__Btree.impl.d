lib/relational/btree.ml: Array Device Hashtbl Heap_file Int List Option Schema Taqp_data Taqp_storage Tuple Value
