lib/relational/ra.ml: Fmt Hashtbl List Option Predicate Schema Taqp_data Taqp_storage
