lib/relational/predicate.ml: Fmt Hashtbl List Option Schema Taqp_data Tuple Value
