lib/relational/predicate.mli: Format Schema Taqp_data Tuple Value
