lib/relational/parser.mli: Predicate Ra
