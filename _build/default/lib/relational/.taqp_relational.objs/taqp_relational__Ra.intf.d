lib/relational/ra.mli: Format Predicate Schema Taqp_data Taqp_storage
