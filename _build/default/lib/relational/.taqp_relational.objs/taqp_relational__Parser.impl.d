lib/relational/parser.ml: Array Buffer Fmt List Predicate Ra String Taqp_data Value
