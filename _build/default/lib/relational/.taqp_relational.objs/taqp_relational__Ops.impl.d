lib/relational/ops.ml: Array Device List Predicate Schema Seq Taqp_data Taqp_storage Tuple Value
