lib/relational/btree.mli: Device Heap_file Taqp_data Taqp_storage Tuple Value
