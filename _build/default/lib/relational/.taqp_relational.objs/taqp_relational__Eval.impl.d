lib/relational/eval.ml: Array Catalog Device Heap_file Ops Option Ra Taqp_data Taqp_storage Tuple
