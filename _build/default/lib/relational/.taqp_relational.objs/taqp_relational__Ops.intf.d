lib/relational/ops.mli: Device Predicate Schema Taqp_data Taqp_storage Tuple
