(** Sort-based physical operators over in-memory tuple arrays.

    These are the paper's estimator-evaluation algorithms (Figures 4.3,
    4.4, 4.6, 4.7): write operand tuples to temp files, external-sort
    them, and merge. When a {!Taqp_storage.Device.t} is supplied every
    step charges the clock, reproducing the cost structure of equations
    (4.1)-(4.5); without a device the operators are pure functions
    (used for ground-truth counting and tests).

    Bag semantics: Select/Join/Intersect preserve multiplicity (each
    qualifying point of the point space yields one output tuple);
    Project collapses to distinct groups with occupancies; Union and
    Difference are set operations and expect duplicate-free operands. *)

open Taqp_data
open Taqp_storage

val select :
  ?device:Device.t -> schema:Schema.t -> Predicate.t -> Tuple.t array ->
  Tuple.t array
(** Figure 4.3: read and check each tuple, write qualifying pages. *)

val sort_stage :
  ?device:Device.t -> key:int array -> Tuple.t array -> Tuple.t array
(** Steps (1)-(2) of Figures 4.4/4.6/4.7: write the tuples to a temp
    file and external-sort them by [key] (then by all fields, for
    determinism). Returns a sorted copy. *)

val merge_join :
  ?device:Device.t -> schema_l:Schema.t -> schema_r:Schema.t ->
  Predicate.t -> Tuple.t array -> Tuple.t array -> Tuple.t array
(** Theta-join. Equi-conjuncts ([l.a = r.b]) key a sort-merge join and
    the residual predicate filters the key-equal candidates; with no
    cross-side equi-conjunct the operator falls back to a (charged)
    nested loop. Inputs need not be pre-sorted. *)

val intersect :
  ?device:Device.t -> schema:Schema.t -> Tuple.t array -> Tuple.t array ->
  Tuple.t array
(** Figure 4.4: sort both operands and merge; a pair matches when all
    fields are equal. Output multiplicity is the product of the two
    sides' multiplicities (one per matching point). *)

val project_groups :
  ?device:Device.t -> schema:Schema.t -> string list -> Tuple.t array ->
  (Tuple.t * int) array
(** Figure 4.7: project each tuple, sort, then scan writing each
    distinct tuple with its occupancy — the group counts Goodman's
    estimator consumes. *)

val union : ?device:Device.t -> Tuple.t array -> Tuple.t array -> Tuple.t array
(** Sorted set union (operands treated as sets). *)

val difference :
  ?device:Device.t -> Tuple.t array -> Tuple.t array -> Tuple.t array
(** Sorted set difference (left minus right, as sets). *)

val distinct : ?device:Device.t -> Tuple.t array -> Tuple.t array

val key_positions : Schema.t -> string list -> int array
(** Resolve attribute names to positions.
    @raise Schema.Schema_error on unknown names. *)

val split_equi_pairs :
  schema_l:Schema.t -> schema_r:Schema.t -> Predicate.t ->
  (int array * int array) * Predicate.t
(** Orient the predicate's equi-join pairs across the two operand
    schemas: returns the left and right key positions plus the residual
    predicate (which includes any equi pair that does not span both
    sides). *)

val merge_sorted_join :
  ?device:Device.t -> key_l:int array -> key_r:int array ->
  residual:(Tuple.t -> bool) -> residual_comparisons:int ->
  Tuple.t array -> Tuple.t array -> Tuple.t list
(** One pairing merge of the full-fulfillment plan (Figure 4.5): both
    inputs already sorted by their keys; emits the concatenated tuples
    whose residual predicate holds. Charges merge reads and residual
    checks only — the caller accounts for output pages. *)

val merge_sorted_intersect :
  ?device:Device.t -> Tuple.t array -> Tuple.t array -> Tuple.t list
(** Pairing merge for Intersect: inputs sorted on all fields; emits the
    left tuple of each matching cross pair. *)

val compare_with_key : int array -> Tuple.t -> Tuple.t -> int
(** Order by the key positions, then by all fields (the sort order
    {!sort_stage} uses). *)
