(** Selection / join predicates: boolean formulas over tuple attributes
    with integer/float arithmetic and string comparison.

    The paper's cost formulas depend on the number of comparisons a
    selection formula evaluates ("the selection formula containing two
    integer comparisons"); {!comparisons} exposes exactly that count. *)

open Taqp_data

type expr =
  | Const of Value.t
  | Attr of string
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Cmp of cmp * expr * expr
  | And of t * t
  | Or of t * t
  | Not of t

exception Type_error of string

val typecheck : Schema.t -> t -> unit
(** @raise Type_error when an attribute is unknown, arithmetic is applied
    to non-numeric operands, or a comparison mixes incompatible types. *)

val compile : Schema.t -> t -> Tuple.t -> bool
(** Resolve attribute positions against [schema] once and return a fast
    evaluator. Null comparisons are false (SQL-ish three-valued logic
    collapsed to false). @raise Type_error as {!typecheck}. *)

val comparisons : t -> int
(** Number of comparison nodes, the cost-formula workload measure. *)

val attrs : t -> string list
(** Attribute names referenced, without duplicates, in first-use order. *)

val equi_join_pairs : t -> (string * string) list
(** The top-level conjuncts of the form [Attr a = Attr b] — the join
    attributes a sort-merge join can key on. *)

val residual_of_equi : t -> t
(** [t] with its {!equi_join_pairs} conjuncts replaced by [True] —
    what remains to check after the merge keys matched. *)

val conj : t list -> t
val disj : t list -> t

val pp : Format.formatter -> t -> unit
val pp_expr : Format.formatter -> expr -> unit
