open Taqp_data
open Taqp_storage

exception Eval_error of string

let scan ?device file =
  let n = Heap_file.n_blocks file in
  let out = ref [] in
  for i = n - 1 downto 0 do
    (match device with None -> () | Some d -> Device.read_block d);
    out := Array.to_list (Heap_file.block file i) @ !out
  done;
  Array.of_list !out

let eval ?device catalog expr =
  let lookup name =
    Option.map Heap_file.schema (Catalog.find_opt catalog name)
  in
  let schema_of e = Ra.infer ~lookup e in
  let rec go e : Tuple.t array =
    match e with
    | Ra.Relation { name; _ } -> (
        match Catalog.find_opt catalog name with
        | None -> raise (Eval_error ("unknown relation " ^ name))
        | Some file -> scan ?device file)
    | Ra.Select (pred, child) ->
        Ops.select ?device ~schema:(schema_of child) pred (go child)
    | Ra.Project (names, child) ->
        let groups =
          Ops.project_groups ?device ~schema:(schema_of child) names (go child)
        in
        Array.map fst groups
    | Ra.Join (pred, l, r) ->
        Ops.merge_join ?device ~schema_l:(schema_of l) ~schema_r:(schema_of r)
          pred (go l) (go r)
    | Ra.Intersect (l, r) ->
        Ops.intersect ?device ~schema:(schema_of l) (go l) (go r)
    | Ra.Union (l, r) -> Ops.union ?device (go l) (go r)
    | Ra.Difference (l, r) -> Ops.difference ?device (go l) (go r)
  in
  (* Typecheck up front so errors surface before any work is charged. *)
  ignore (schema_of expr);
  go expr

let count ?device catalog expr = Array.length (eval ?device catalog expr)

let operator_selectivity catalog expr =
  let size e = float_of_int (count catalog e) in
  match expr with
  | Ra.Relation _ -> 1.0
  | Ra.Select (_, c) | Ra.Project (_, c) ->
      let input = size c in
      if input <= 0.0 then 0.0 else size expr /. input
  | Ra.Join (_, l, r) | Ra.Intersect (l, r) ->
      let points = size l *. size r in
      if points <= 0.0 then 0.0 else size expr /. points
  | Ra.Union (_, _) | Ra.Difference (_, _) -> 1.0
