(** Exact evaluation of RA expressions over full relations — the ground
    truth against which the sampling estimators are judged, and the
    "ordinary query evaluation" the time-constrained algorithm
    short-circuits.

    When a device is supplied, base-relation scans charge one block
    read per block and the operators charge per Figures 4.3-4.7 — this
    is how the benches measure what an exact answer {e would} cost. *)

open Taqp_data
open Taqp_storage

exception Eval_error of string

val eval : ?device:Device.t -> Catalog.t -> Ra.t -> Tuple.t array
(** Result tuples. Select/Join/Intersect keep bag multiplicity; Project
    returns distinct groups; Union/Difference are set ops.
    @raise Eval_error on unknown relations; @raise Ra.Type_error on
    ill-typed expressions. *)

val count : ?device:Device.t -> Catalog.t -> Ra.t -> int
(** [COUNT(E)]: number of result tuples of {!eval} — the quantity the
    paper's estimators approximate. *)

val scan : ?device:Device.t -> Heap_file.t -> Tuple.t array
(** All tuples of a heap file, charging one read per block. *)

val operator_selectivity : Catalog.t -> Ra.t -> float
(** The true selectivity of the expression's root operator w.r.t. its
    operand point space (output tuples / input points) — what a
    "prestored selectivities" catalog would hold (Section 3.1's
    alternative to run-time estimation). A bare relation has
    selectivity 1. *)
