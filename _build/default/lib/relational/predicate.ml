open Taqp_data

type expr =
  | Const of Value.t
  | Attr of string
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | True
  | False
  | Cmp of cmp * expr * expr
  | And of t * t
  | Or of t * t
  | Not of t

exception Type_error of string

let type_error fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

(* Static type of an expression: numeric expressions may be Tint or
   Tfloat; we fold both into `Num for checking purposes. *)
type sty = Num | Str | Boolean

let sty_of_vty = function
  | Value.Tint | Value.Tfloat -> Num
  | Value.Tstring -> Str
  | Value.Tbool -> Boolean

let sty_name = function Num -> "numeric" | Str -> "string" | Boolean -> "bool"

let rec expr_type schema = function
  | Const Value.Null -> None
  | Const v -> Option.map sty_of_vty (Value.type_of v)
  | Attr name -> (
      match Schema.find schema name with
      | i -> Some (sty_of_vty (Schema.ty_at schema i))
      | exception Schema.Schema_error msg -> type_error "%s" msg)
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
      let check side =
        match expr_type schema side with
        | Some Num | None -> ()
        | Some s -> type_error "arithmetic on %s operand" (sty_name s)
      in
      check a;
      check b;
      Some Num

let rec typecheck schema = function
  | True | False -> ()
  | Cmp (_, a, b) -> (
      match (expr_type schema a, expr_type schema b) with
      | Some x, Some y when x <> y ->
          type_error "comparison between %s and %s" (sty_name x) (sty_name y)
      | _, _ -> ())
  | And (a, b) | Or (a, b) ->
      typecheck schema a;
      typecheck schema b
  | Not a -> typecheck schema a

(* Compiled expressions close over attribute positions. *)
let rec compile_expr schema = function
  | Const v -> fun _ -> v
  | Attr name ->
      let i =
        match Schema.find schema name with
        | i -> i
        | exception Schema.Schema_error msg -> type_error "%s" msg
      in
      fun t -> Tuple.get t i
  | Add (a, b) -> arith schema ( + ) ( +. ) a b
  | Sub (a, b) -> arith schema ( - ) ( -. ) a b
  | Mul (a, b) -> arith schema ( * ) ( *. ) a b
  | Div (a, b) ->
      let fa = compile_expr schema a and fb = compile_expr schema b in
      fun t ->
        (match (fa t, fb t) with
        | Value.Int _, Value.Int 0 -> Value.Null
        | Value.Int x, Value.Int y -> Value.Int (x / y)
        | x, y -> (
            match (Value.to_float x, Value.to_float y) with
            | Some x, Some y when y <> 0.0 -> Value.Float (x /. y)
            | _, _ -> Value.Null))

and arith schema int_op float_op a b =
  let fa = compile_expr schema a and fb = compile_expr schema b in
  fun t ->
    match (fa t, fb t) with
    | Value.Int x, Value.Int y -> Value.Int (int_op x y)
    | x, y -> (
        match (Value.to_float x, Value.to_float y) with
        | Some x, Some y -> Value.Float (float_op x y)
        | _, _ -> Value.Null)

let cmp_holds op a b =
  if Value.is_null a || Value.is_null b then false
  else
    let c = Value.compare a b in
    match op with
    | Eq -> c = 0
    | Ne -> c <> 0
    | Lt -> c < 0
    | Le -> c <= 0
    | Gt -> c > 0
    | Ge -> c >= 0

let compile schema pred =
  typecheck schema pred;
  let rec go = function
    | True -> fun _ -> true
    | False -> fun _ -> false
    | Cmp (op, a, b) ->
        let fa = compile_expr schema a and fb = compile_expr schema b in
        fun t -> cmp_holds op (fa t) (fb t)
    | And (a, b) ->
        let fa = go a and fb = go b in
        fun t -> fa t && fb t
    | Or (a, b) ->
        let fa = go a and fb = go b in
        fun t -> fa t || fb t
    | Not a ->
        let fa = go a in
        fun t -> not (fa t)
  in
  go pred

let rec comparisons = function
  | True | False -> 0
  | Cmp (_, _, _) -> 1
  | And (a, b) | Or (a, b) -> comparisons a + comparisons b
  | Not a -> comparisons a

let attrs pred =
  let seen = Hashtbl.create 8 in
  let out = ref [] in
  let note name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.add seen name ();
      out := name :: !out
    end
  in
  let rec go_expr = function
    | Const _ -> ()
    | Attr name -> note name
    | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) ->
        go_expr a;
        go_expr b
  in
  let rec go = function
    | True | False -> ()
    | Cmp (_, a, b) ->
        go_expr a;
        go_expr b
    | And (a, b) | Or (a, b) ->
        go a;
        go b
    | Not a -> go a
  in
  go pred;
  List.rev !out

let rec conjuncts = function
  | And (a, b) -> conjuncts a @ conjuncts b
  | p -> [ p ]

let equi_join_pairs pred =
  List.filter_map
    (function Cmp (Eq, Attr a, Attr b) -> Some (a, b) | _ -> None)
    (conjuncts pred)

let residual_of_equi pred =
  let keep = function Cmp (Eq, Attr _, Attr _) -> false | _ -> true in
  match List.filter keep (conjuncts pred) with
  | [] -> True
  | p :: ps -> List.fold_left (fun acc q -> And (acc, q)) p ps

let conj = function
  | [] -> True
  | p :: ps -> List.fold_left (fun acc q -> And (acc, q)) p ps

let disj = function
  | [] -> False
  | p :: ps -> List.fold_left (fun acc q -> Or (acc, q)) p ps

let cmp_symbol = function
  | Eq -> "="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let rec pp_expr ppf = function
  | Const v -> Value.pp ppf v
  | Attr a -> Fmt.string ppf a
  | Add (a, b) -> Fmt.pf ppf "(%a + %a)" pp_expr a pp_expr b
  | Sub (a, b) -> Fmt.pf ppf "(%a - %a)" pp_expr a pp_expr b
  | Mul (a, b) -> Fmt.pf ppf "(%a * %a)" pp_expr a pp_expr b
  | Div (a, b) -> Fmt.pf ppf "(%a / %a)" pp_expr a pp_expr b

let rec pp ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Cmp (op, a, b) -> Fmt.pf ppf "%a %s %a" pp_expr a (cmp_symbol op) pp_expr b
  | And (a, b) -> Fmt.pf ppf "(%a && %a)" pp a pp b
  | Or (a, b) -> Fmt.pf ppf "(%a || %a)" pp a pp b
  | Not a -> Fmt.pf ppf "!(%a)" pp a
