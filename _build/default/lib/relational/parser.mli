(** A concrete syntax for RA expressions, matching {!Ra.pp} — the
    prototype DBMS "uses relational algebra expressions as its query
    language", and so do our CLI and examples.

    {v
    expr  := select [ pred ] ( expr )
           | project [ name, ... ] ( expr )
           | join [ pred ] ( expr , expr )
           | union ( expr , expr )
           | difference ( expr , expr )
           | intersect ( expr , expr )
           | relname (as alias)?
    pred  := disjunctions/conjunctions of comparisons over attributes,
             integers, floats, "strings", true, false, with
             + - * / arithmetic and = != < <= > >= comparisons
    v}

    [count(expr)] is also accepted and returns the inner expression. *)

exception Parse_error of { position : int; message : string }

val expression : string -> Ra.t
(** @raise Parse_error on malformed input. *)

val predicate : string -> Predicate.t
(** Parse a predicate on its own (for CLI filters). *)

val roundtrip : Ra.t -> Ra.t
(** [expression (Ra.to_string e)] — exposed for property tests. *)
