module Count_estimator = Taqp_estimators.Count_estimator

type t = Count | Sum of string | Avg of string

let attr = function Count -> None | Sum a | Avg a -> Some a
let name = function Count -> "count" | Sum _ -> "sum" | Avg _ -> "avg"

let pp ppf = function
  | Count -> Format.pp_print_string ppf "count"
  | Sum a -> Format.fprintf ppf "sum(%s)" a
  | Avg a -> Format.fprintf ppf "avg(%s)" a

let parse s =
  let s = String.trim s in
  let inner prefix =
    let n = String.length prefix in
    if
      String.length s > n + 1
      && String.sub s 0 n = prefix
      && s.[n] = '('
      && s.[String.length s - 1] = ')'
    then Some (String.trim (String.sub s (n + 1) (String.length s - n - 2)))
    else None
  in
  if String.lowercase_ascii s = "count" then Count
  else
    match inner "sum" with
    | Some a when a <> "" -> Sum a
    | _ -> (
        match inner "avg" with
        | Some a when a <> "" -> Avg a
        | _ -> invalid_arg "Aggregate.parse: expected count, sum(attr) or avg(attr)")

type moments = { sum : float; sum_sq : float; hits : float }

let zero_moments = { sum = 0.0; sum_sq = 0.0; hits = 0.0 }

let add_tuple m v =
  { sum = m.sum +. v; sum_sq = m.sum_sq +. (v *. v); hits = m.hits +. 1.0 }

let fpc ~m ~n = if n > 0.0 then Float.max 0.0 ((n -. m) /. n) else 1.0

let sum_estimator moments ~points ~total_points =
  if points <= 0.0 then invalid_arg "Aggregate.sum_estimator: no points";
  let mean = moments.sum /. points in
  (* Per-point contribution variance over the sample (zeros included):
     s^2 = (sum_sq - sum^2/m) / (m - 1). *)
  let s2 =
    if points < 2.0 then 0.0
    else
      Float.max 0.0
        ((moments.sum_sq -. (moments.sum *. moments.sum /. points))
        /. (points -. 1.0))
  in
  let var_mean = s2 /. points *. fpc ~m:points ~n:total_points in
  {
    Count_estimator.estimate = total_points *. mean;
    variance = total_points *. total_points *. var_mean;
    hits = moments.hits;
    points;
    total_points;
    is_exact = points >= total_points;
  }

let covariance_estimate moments ~points ~total_points =
  if points < 2.0 then 0.0
  else begin
    (* y is the 0/1 hit indicator, z the contribution; z*y = z, so
       sample Cov(z, y) = (sum_z - sum_z * hits / m) / (m - 1). *)
    let cov_zy =
      (moments.sum -. (moments.sum *. moments.hits /. points)) /. (points -. 1.0)
    in
    total_points *. total_points *. cov_zy /. points
    *. fpc ~m:points ~n:total_points
  end

let avg_of ~sum ~count ~covariance =
  let c = count.Count_estimator.estimate in
  if Float.abs c < 1e-9 then
    {
      Count_estimator.estimate = 0.0;
      variance = sum.Count_estimator.variance;
      hits = count.Count_estimator.hits;
      points = count.Count_estimator.points;
      total_points = count.Count_estimator.total_points;
      is_exact = count.Count_estimator.is_exact;
    }
  else begin
    let r = sum.Count_estimator.estimate /. c in
    let var =
      Float.max 0.0
        ((sum.Count_estimator.variance
         +. (r *. r *. count.Count_estimator.variance)
         -. (2.0 *. r *. covariance))
        /. (c *. c))
    in
    {
      Count_estimator.estimate = r;
      variance = var;
      hits = count.Count_estimator.hits;
      points = count.Count_estimator.points;
      total_points = count.Count_estimator.total_points;
      is_exact = sum.Count_estimator.is_exact && count.Count_estimator.is_exact;
    }
  end
