(** The time-constrained query evaluation algorithm of Figure 3.1.

    Given a COUNT(E) query and a time quota, repeatedly: revise the
    operator selectivities, determine the stage's sample fraction with
    the configured time-control strategy, draw and evaluate the new
    sample, and improve the estimate — until the stopping criterion
    fires. The clock (inside [device]) may be virtual (experiments) or
    wall (live use); under a hard deadline it is armed in abort mode so
    an overrunning stage is interrupted like the prototype's timer
    interrupt service routine. *)

open Taqp_storage
open Taqp_relational

val run :
  ?config:Config.t ->
  ?aggregate:Aggregate.t ->
  device:Device.t ->
  catalog:Catalog.t ->
  rng:Taqp_rng.Prng.t ->
  quota:float ->
  Ra.t ->
  Report.t
(** [aggregate] defaults to COUNT (the paper's f); SUM/AVG use the
    Section-1 extension estimators of {!Aggregate}.
    @raise Invalid_argument on a non-positive quota or invalid config;
    @raise Staged.Compile_error / @raise Ra.Type_error /
    @raise Taqp_estimators.Inclusion_exclusion.Unsupported from
    compilation. *)
