(** Aggregate functions over RA expressions.

    The paper restricts f(E) to COUNT but notes the machinery applies
    to "any type of relational algebra query (given, of course, an
    estimator for the query)". This module supplies the estimators for
    SUM and AVG over a numeric attribute of the result:

    - SUM scales the sampled attribute total exactly as COUNT scales
      the hit count: SUM = N * (sum over sample outputs) / m, with the
      variance from the per-point contribution variance;
    - AVG is the ratio SUM/COUNT with a delta-method variance.

    SUM/AVG require every inclusion-exclusion term to end in a
    Select-Join-Intersect pipeline (no Project root: the sum over
    distinct groups has no Goodman-style estimator here). *)

type t =
  | Count
  | Sum of string  (** attribute of the result schema *)
  | Avg of string

val attr : t -> string option
val name : t -> string
val pp : Format.formatter -> t -> unit

val parse : string -> t
(** ["count"], ["sum(attr)"] or ["avg(attr)"].
    @raise Invalid_argument otherwise. *)

(** Per-term sample moments of the aggregated attribute: the sums over
    the term's output tuples so far. *)
type moments = { sum : float; sum_sq : float; hits : float }

val zero_moments : moments

val add_tuple : moments -> float -> moments
(** Fold one qualifying tuple's attribute value in. *)

val sum_estimator :
  moments -> points:float -> total_points:float ->
  Taqp_estimators.Count_estimator.t
(** The SUM estimator over one term: N * sum/m, with the SRS variance
    of the per-point contribution (0 for non-qualifying points).
    @raise Invalid_argument if [points <= 0]. *)

val avg_of :
  sum:Taqp_estimators.Count_estimator.t ->
  count:Taqp_estimators.Count_estimator.t ->
  covariance:float ->
  Taqp_estimators.Count_estimator.t
(** The ratio estimator AVG = SUM/COUNT with the delta-method variance
    Var(S/C) ~ (Var(S) + r^2 Var(C) - 2 r Cov(S,C)) / C^2 where
    r = S/C. Returns estimate 0 with the SUM's variance when the count
    estimate is 0. *)

val covariance_estimate :
  moments -> points:float -> total_points:float -> float
(** Estimated Cov(SUM_hat, COUNT_hat) from the sample: the per-point
    (z, y) covariance scaled by N^2 (with finite-population
    correction), where z is the contribution and y the 0/1 hit. *)
