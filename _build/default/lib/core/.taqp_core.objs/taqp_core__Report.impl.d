lib/core/report.ml: Format List Printf String Taqp_stats Taqp_storage
