lib/core/config.mli: Taqp_relational Taqp_sampling Taqp_timecontrol
