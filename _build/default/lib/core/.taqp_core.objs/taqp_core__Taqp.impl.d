lib/core/taqp.ml: Aggregate Array Executor Float Report Taqp_data Taqp_relational Taqp_rng Taqp_storage
