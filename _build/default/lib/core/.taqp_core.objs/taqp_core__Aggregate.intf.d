lib/core/aggregate.mli: Format Taqp_estimators
