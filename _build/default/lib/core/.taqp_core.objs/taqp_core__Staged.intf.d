lib/core/staged.mli: Aggregate Catalog Config Device Ra Report Taqp_data Taqp_estimators Taqp_relational Taqp_rng Taqp_storage Taqp_timecost
