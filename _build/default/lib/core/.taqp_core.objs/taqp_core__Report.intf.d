lib/core/report.mli: Format Taqp_stats Taqp_storage
