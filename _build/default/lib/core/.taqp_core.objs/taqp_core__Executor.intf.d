lib/core/executor.mli: Aggregate Catalog Config Device Ra Report Taqp_relational Taqp_rng Taqp_storage
