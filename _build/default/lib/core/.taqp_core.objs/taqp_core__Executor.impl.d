lib/core/executor.ml: Aggregate Config Float Fmt List Logs Option Report Staged Taqp_data Taqp_estimators Taqp_stats Taqp_storage Taqp_timecontrol Taqp_timecost
