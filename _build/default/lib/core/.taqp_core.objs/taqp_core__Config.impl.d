lib/core/config.ml: Taqp_relational Taqp_sampling Taqp_timecontrol
