lib/core/aggregate.ml: Float Format String Taqp_estimators
