lib/core/taqp.mli: Aggregate Catalog Config Cost_params Device Ra Report Taqp_relational Taqp_rng Taqp_storage
