let without_replacement rng ~k ~n =
  if k < 0 || n < 0 then invalid_arg "Sample.without_replacement: negative";
  if k > n then invalid_arg "Sample.without_replacement: k > n";
  (* Floyd's algorithm: for j = n-k .. n-1, draw t in [0,j]; insert t
     unless already present, else insert j. Produces a uniform k-subset. *)
  let seen = Hashtbl.create (2 * k) in
  let out = ref [] in
  for j = n - k to n - 1 do
    let t = Prng.int rng (j + 1) in
    let pick = if Hashtbl.mem seen t then j else t in
    Hashtbl.add seen pick ();
    out := pick :: !out
  done;
  let arr = Array.of_list !out in
  (* Floyd's order is biased; shuffle for a uniformly ordered sample. *)
  let shuffle_arr a =
    for i = Array.length a - 1 downto 1 do
      let j = Prng.int rng (i + 1) in
      let tmp = a.(i) in
      a.(i) <- a.(j);
      a.(j) <- tmp
    done
  in
  shuffle_arr arr;
  Array.to_list arr

let from_excluding rng ~k ~n ~excluded ~excluded_count =
  let remaining = n - excluded_count in
  if k > remaining then
    invalid_arg "Sample.from_excluding: not enough values remain";
  if k = 0 then []
  else if 3 * k <= remaining then begin
    (* Sparse case: rejection sampling against the exclusion predicate. *)
    let seen = Hashtbl.create (2 * k) in
    let out = ref [] in
    let drawn = ref 0 in
    while !drawn < k do
      let v = Prng.int rng n in
      if (not (excluded v)) && not (Hashtbl.mem seen v) then begin
        Hashtbl.add seen v ();
        out := v :: !out;
        incr drawn
      end
    done;
    !out
  end
  else begin
    (* Dense case: materialize the survivors and take a k-subset. *)
    let survivors = Array.make remaining 0 in
    let idx = ref 0 in
    for v = 0 to n - 1 do
      if not (excluded v) then begin
        survivors.(!idx) <- v;
        incr idx
      end
    done;
    List.map (fun i -> survivors.(i)) (without_replacement rng ~k ~n:remaining)
  end

let shuffle rng a =
  for i = Array.length a - 1 downto 1 do
    let j = Prng.int rng (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose rng a =
  if Array.length a = 0 then invalid_arg "Sample.choose: empty array";
  a.(Prng.int rng (Array.length a))

let reservoir rng ~k seq =
  if k <= 0 then []
  else begin
    let res = Array.make k None in
    let count = ref 0 in
    Seq.iter
      (fun x ->
        if !count < k then res.(!count) <- Some x
        else begin
          let j = Prng.int rng (!count + 1) in
          if j < k then res.(j) <- Some x
        end;
        incr count)
      seq;
    Array.to_list res
    |> List.filter_map (fun x -> x)
  end

let bernoulli rng ~p =
  let p = Float.min 1.0 (Float.max 0.0 p) in
  Prng.float rng 1.0 < p
