(** Sampling primitives used by the cluster and simple random sampling
    plans: all draws are {e without replacement}, the regime assumed by
    the paper's estimators and variance formulas. *)

val without_replacement : Prng.t -> k:int -> n:int -> int list
(** [without_replacement rng ~k ~n] draws [k] distinct integers uniformly
    from [0, n), in random order. Uses Floyd's algorithm, O(k) expected.
    @raise Invalid_argument if [k < 0], [n < 0] or [k > n]. *)

val from_excluding : Prng.t -> k:int -> n:int -> excluded:(int -> bool) ->
  excluded_count:int -> int list
(** Draw [k] distinct integers from [0, n) avoiding those for which
    [excluded] holds; [excluded_count] is the number of excluded values.
    This is how later stages sample disk blocks not drawn before.
    @raise Invalid_argument if fewer than [k] values remain. *)

val shuffle : Prng.t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : Prng.t -> 'a array -> 'a
(** Uniform element of a non-empty array. @raise Invalid_argument on []. *)

val reservoir : Prng.t -> k:int -> 'a Seq.t -> 'a list
(** Reservoir sampling: [k] elements uniformly without replacement from a
    sequence of unknown length (fewer if the sequence is shorter). *)

val bernoulli : Prng.t -> p:float -> bool
(** True with probability [p] (clamped to [0,1]). *)
