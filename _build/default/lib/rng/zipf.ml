type t = { n : int; s : float; cdf : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n <= 0";
  if s < 0.0 then invalid_arg "Zipf.create: negative exponent";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for k = 0 to n - 1 do
    acc := !acc +. (1.0 /. (float_of_int (k + 1) ** s));
    cdf.(k) <- !acc
  done;
  let total = !acc in
  for k = 0 to n - 1 do
    cdf.(k) <- cdf.(k) /. total
  done;
  { n; s; cdf }

let n t = t.n
let exponent t = t.s

let draw t rng =
  let u = Prng.float rng 1.0 in
  (* smallest k with cdf.(k) >= u *)
  let lo = ref 0 and hi = ref (t.n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let pmf t k =
  if k < 0 || k >= t.n then invalid_arg "Zipf.pmf: rank out of range";
  if k = 0 then t.cdf.(0) else t.cdf.(k) -. t.cdf.(k - 1)
