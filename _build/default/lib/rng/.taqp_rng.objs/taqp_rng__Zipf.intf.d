lib/rng/zipf.mli: Prng
