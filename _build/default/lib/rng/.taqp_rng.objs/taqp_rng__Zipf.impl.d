lib/rng/zipf.ml: Array Prng
