lib/rng/sample.mli: Prng Seq
