lib/rng/prng.mli:
