lib/rng/sample.ml: Array Float Hashtbl List Prng Seq
