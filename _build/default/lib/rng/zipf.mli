(** Zipf-distributed sampling over ranks 0..n-1: rank k is drawn with
    probability proportional to 1/(k+1)^s. Used by the workload
    generators to produce skewed attribute distributions — the regime
    where uniform-sampling estimators (Goodman/Chao, selectivity
    learning) are stressed. *)

type t

val create : n:int -> s:float -> t
(** Precomputes the CDF; O(n) space. @raise Invalid_argument if
    [n <= 0] or [s < 0]. [s = 0] is the uniform distribution. *)

val n : t -> int
val exponent : t -> float

val draw : t -> Prng.t -> int
(** A rank in [0, n), by binary search over the CDF: O(log n). *)

val pmf : t -> int -> float
(** Probability of rank [k]. @raise Invalid_argument out of range. *)
