type t =
  | One_at_a_time of { d_beta : float; zero_beta : float }
  | Single_interval of { d_alpha : float; zero_beta : float }
  | Heuristic of { split : float }

let one_at_a_time ?(zero_beta = 0.05) ~d_beta () =
  if d_beta < 0.0 then invalid_arg "Strategy.one_at_a_time: negative d_beta";
  One_at_a_time { d_beta; zero_beta }

let single_interval ?(zero_beta = 0.05) ~d_alpha () =
  if d_alpha < 0.0 then
    invalid_arg "Strategy.single_interval: negative d_alpha";
  Single_interval { d_alpha; zero_beta }

let heuristic ~split =
  if split <= 0.0 || split > 1.0 then
    invalid_arg "Strategy.heuristic: split outside (0,1]";
  Heuristic { split }

let default = one_at_a_time ~d_beta:(Taqp_stats.Distribution.risk_to_d 0.05) ()

let name = function
  | One_at_a_time _ -> "one-at-a-time"
  | Single_interval _ -> "single-interval"
  | Heuristic _ -> "heuristic"

let pp ppf = function
  | One_at_a_time { d_beta; zero_beta } ->
      Format.fprintf ppf "one-at-a-time(d_beta=%g, zero_beta=%g)" d_beta zero_beta
  | Single_interval { d_alpha; zero_beta } ->
      Format.fprintf ppf "single-interval(d_alpha=%g, zero_beta=%g)" d_alpha
        zero_beta
  | Heuristic { split } -> Format.fprintf ppf "heuristic(split=%g)" split
