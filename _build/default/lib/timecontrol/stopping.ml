type t =
  | Hard_deadline
  | Soft_deadline of { grace : float }
  | Error_bound of { relative : float; level : float }
  | Stagnation of { epsilon : float; window : int }
  | Max_stages of int
  | All of t list

let hard = Hard_deadline

type status = {
  elapsed : float;
  quota : float;
  stages : int;
  estimate : float;
  rel_half_width : float option;
  recent_estimates : float list;
}

let rec should_stop t status =
  match t with
  | Hard_deadline | Soft_deadline _ -> status.elapsed >= status.quota
  | Error_bound { relative; _ } -> (
      match status.rel_half_width with
      | Some w -> w <= relative
      | None -> false)
  | Stagnation { epsilon; window } ->
      status.stages >= window
      &&
      let recent =
        List.filteri (fun i _ -> i < window) status.recent_estimates
      in
      List.length recent >= window
      && (match recent with
         | newest :: _ ->
             let scale = Float.max 1.0 (Float.abs newest) in
             List.for_all
               (fun e -> Float.abs (e -. newest) /. scale <= epsilon)
               recent
         | [] -> false)
  | Max_stages n -> status.stages >= n
  | All ts -> List.exists (fun t -> should_stop t status) ts

let rec deadline_mode = function
  | Hard_deadline -> `Abort
  | Soft_deadline _ | Error_bound _ | Stagnation _ | Max_stages _ -> `Observe
  | All ts ->
      if List.exists (fun t -> deadline_mode t = `Abort) ts then `Abort
      else `Observe

let rec allows_stage t ~predicted_end ~quota =
  match t with
  | Hard_deadline -> predicted_end <= quota
  | Soft_deadline { grace } -> predicted_end <= quota *. (1.0 +. grace)
  | Error_bound _ | Stagnation _ | Max_stages _ -> true
  | All ts -> List.for_all (fun t -> allows_stage t ~predicted_end ~quota) ts

let rec pp ppf = function
  | Hard_deadline -> Format.pp_print_string ppf "hard-deadline"
  | Soft_deadline { grace } -> Format.fprintf ppf "soft-deadline(+%g%%)" (100.0 *. grace)
  | Error_bound { relative; level } ->
      Format.fprintf ppf "error<=%g%%@%g%%" (100.0 *. relative) (100.0 *. level)
  | Stagnation { epsilon; window } ->
      Format.fprintf ppf "stagnation(%g,%d)" epsilon window
  | Max_stages n -> Format.fprintf ppf "max-stages(%d)" n
  | All ts ->
      Format.fprintf ppf "any(%a)"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           pp)
        ts
