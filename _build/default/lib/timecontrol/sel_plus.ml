open Taqp_estimators
open Taqp_stats

let compute record ~d_beta ~zero_beta ~m_next ~n_remaining =
  if d_beta < 0.0 then invalid_arg "Sel_plus.compute: negative d_beta";
  if zero_beta <= 0.0 || zero_beta >= 1.0 then
    invalid_arg "Sel_plus.compute: zero_beta outside (0,1)";
  let seen = Selectivity.points_seen record in
  if seen < 1.0 then Selectivity.initial record
  else begin
    let sel = Selectivity.estimate record in
    if sel <= 0.0 then begin
      let m = Int.max 1 (int_of_float seen) in
      Distribution.zero_selectivity_fix ~beta:zero_beta ~m
    end
    else begin
      let var = Selectivity.variance_srs record ~m_next ~n_remaining in
      Float.min 1.0 (sel +. (d_beta *. sqrt (Float.max 0.0 var)))
    end
  end
