(** The inflated selectivities sel+ of the One-at-a-Time-Interval
    strategy (equation 3.3, Figure 3.5).

    At stage i the stage is budgeted as if each operator had selectivity
    sel+ = sel^{i-1} + d_beta * sqrt(Var(sel_i)), so that the true
    stage selectivity exceeds sel+ only with probability ~beta. The
    variance uses the paper's simple-random-sampling approximation
    ({!Taqp_estimators.Selectivity.variance_srs}); when the observed
    selectivity is still exactly 0 the combinatorial zero fix of
    Section 3.4 applies instead. *)

val compute :
  Taqp_estimators.Selectivity.t ->
  d_beta:float ->
  zero_beta:float ->
  m_next:float ->
  n_remaining:float ->
  float
(** The sel+ to budget with for the coming stage, in (0, 1].

    - before any observation: the record's initial (maximum) selectivity
      (Figure 3.3's first-stage rule — no inflation, nothing to inflate);
    - observed selectivity 0: 1 - zero_beta^(1/points_seen), the largest
      selectivity under which an all-zero sample of the seen points
      still has probability >= zero_beta;
    - otherwise: sel^{i-1} + d_beta * sqrt(Var_srs(sel_i)), clamped
      to 1.

    [m_next] is the number of points this operator would evaluate at
    the coming stage, [n_remaining] the points not yet evaluated.
    @raise Invalid_argument if [d_beta] is negative or [zero_beta]
    outside (0,1). *)
