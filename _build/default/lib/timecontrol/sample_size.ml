type outcome =
  | Fraction of { f : float; predicted : float; iterations : int }
  | Budget_too_small of { f_min_cost : float }
  | Take_everything of { predicted : float }

let bisect ~cost_at ~budget ~f_min ~f_max ?eps ?(max_iterations = 40) () =
  if f_min > f_max then invalid_arg "Sample_size.bisect: f_min > f_max";
  if f_min < 0.0 || f_max > 1.0 then
    invalid_arg "Sample_size.bisect: fractions outside [0,1]";
  if budget <= 0.0 then invalid_arg "Sample_size.bisect: non-positive budget";
  let eps = match eps with Some e -> e | None -> 0.01 *. budget in
  let at_min = cost_at f_min in
  if at_min > budget then Budget_too_small { f_min_cost = at_min }
  else begin
    let at_max = cost_at f_max in
    if at_max <= budget then Take_everything { predicted = at_max }
    else begin
      (* Invariant: cost(low) <= budget < cost(high). *)
      let rec go low cost_low high i =
        if i >= max_iterations || budget -. cost_low <= eps then
          Fraction { f = low; predicted = cost_low; iterations = i }
        else begin
          let mid = 0.5 *. (low +. high) in
          let c = cost_at mid in
          if c <= budget then go mid c high (i + 1)
          else go low cost_low mid (i + 1)
        end
      in
      go f_min at_min f_max 0
    end
  end

let with_deviation ~mean_at ~std_at ~d_alpha ~budget ~f_min ~f_max ?eps
    ?max_iterations () =
  let cost_at f = mean_at f +. (d_alpha *. std_at f) in
  bisect ~cost_at ~budget ~f_min ~f_max ?eps ?max_iterations ()
