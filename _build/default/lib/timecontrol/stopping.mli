(** Stopping criteria (Section 3.2).

    The first family watches the clock: a hard deadline interrupts the
    stage in flight (the prototype's choice); a soft deadline trades a
    completion-time value function against the running stage. The
    second family watches the estimate: stop when the confidence
    interval is tight enough, or when stages stop improving it —
    error-constrained evaluation. Criteria combine with {!All}. *)

type t =
  | Hard_deadline
      (** abort mid-stage the moment the quota expires *)
  | Soft_deadline of { grace : float }
      (** let a running stage finish as long as it is predicted to end
          before quota * (1 + grace) — a simple decreasing value
          function over completion time *)
  | Error_bound of { relative : float; level : float }
      (** stop once the CI half-width at [level] is within [relative]
          of the estimate *)
  | Stagnation of { epsilon : float; window : int }
      (** stop when the estimate has changed by less than a fraction
          [epsilon] over the last [window] stages *)
  | Max_stages of int
  | All of t list  (** stop when any member criterion fires *)

val hard : t

(** What the executor knows after each completed stage. *)
type status = {
  elapsed : float;
  quota : float;
  stages : int;
  estimate : float;
  rel_half_width : float option;  (** None when the estimate is 0 *)
  recent_estimates : float list;  (** newest first, including current *)
}

val should_stop : t -> status -> bool
(** True when the criterion says to return the current estimate.
    [Hard_deadline] and [Soft_deadline] fire when [elapsed >= quota]
    (their difference is mid-stage behaviour, which the executor
    implements via the clock's deadline mode). *)

val deadline_mode : t -> [ `Abort | `Observe ]
(** How the clock deadline should be armed for this criterion:
    [`Abort] only for a hard deadline. *)

val allows_stage : t -> predicted_end:float -> quota:float -> bool
(** May a new stage predicted to finish at [predicted_end] be started?
    Soft deadlines allow ends within the grace window. *)

val pp : Format.formatter -> t -> unit
