(** Sample-Size-Determine (Figure 3.4): bisection on the sample
    fraction f until the predicted stage cost meets the stage budget
    within a tolerance epsilon.

    The predicted-cost closures are supplied by the executor (they
    capture the expression, the adaptive cost model and the inflated
    selectivities); this module owns only the root-finding and its
    edge cases. Costs are assumed nondecreasing in f. *)

type outcome =
  | Fraction of { f : float; predicted : float; iterations : int }
      (** take fraction [f]; the budgeted prediction at [f] *)
  | Budget_too_small of { f_min_cost : float }
      (** even the smallest possible stage is predicted to overrun the
          budget — the run should stop (the paper's "time left was not
          enough for a further stage") *)
  | Take_everything of { predicted : float }
      (** the whole remaining population fits the budget: f = f_max *)

val bisect :
  cost_at:(float -> float) ->
  budget:float ->
  f_min:float ->
  f_max:float ->
  ?eps:float ->
  ?max_iterations:int ->
  unit ->
  outcome
(** [eps] defaults to 1% of [budget] (the paper's "tolerable error in
    choosing a mu as close to T_i as possible"); [max_iterations] to
    40. @raise Invalid_argument if [f_min > f_max], either is outside
    [0, 1], or [budget] is not positive. *)

val with_deviation :
  mean_at:(float -> float) ->
  std_at:(float -> float) ->
  d_alpha:float ->
  budget:float ->
  f_min:float ->
  f_max:float ->
  ?eps:float ->
  ?max_iterations:int ->
  unit ->
  outcome
(** The Single-Interval variant: solve mean(f) + d_alpha * std(f) =
    budget (equation 3.2). *)
