(** Time-control strategies (Section 3.3): how much of the remaining
    quota a stage may commit to, and with what protection against
    overspending.

    - {b One-at-a-Time-Interval} (the prototype's choice, Section
      3.3.2): budget the whole remaining time, but cost the stage with
      each operator's selectivity inflated to sel+ individually.
    - {b Single-Interval} (Section 3.3.1): budget so that
      mu_cost(f) + d_alpha * sigma_cost(f) = remaining time — the
      whole-query confidence interval, dearer to compute (it needs the
      variance of QCOST including covariances).
    - {b Heuristic}: commit a fixed fraction of the remaining time
      each stage (geometric splitting); no statistical protection. *)

type t =
  | One_at_a_time of { d_beta : float; zero_beta : float }
  | Single_interval of { d_alpha : float; zero_beta : float }
  | Heuristic of { split : float }

val one_at_a_time : ?zero_beta:float -> d_beta:float -> unit -> t
(** [zero_beta] defaults to 0.05. @raise Invalid_argument on negative
    [d_beta]. *)

val single_interval : ?zero_beta:float -> d_alpha:float -> unit -> t

val heuristic : split:float -> t
(** @raise Invalid_argument unless [split] is in (0, 1]. *)

val default : t
(** One-at-a-Time with d_beta for a ~5% per-operator risk. *)

val name : t -> string
val pp : Format.formatter -> t -> unit
