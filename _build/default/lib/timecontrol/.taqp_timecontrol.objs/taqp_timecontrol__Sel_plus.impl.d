lib/timecontrol/sel_plus.ml: Distribution Float Int Selectivity Taqp_estimators Taqp_stats
