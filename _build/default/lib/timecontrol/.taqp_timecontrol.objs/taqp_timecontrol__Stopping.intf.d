lib/timecontrol/stopping.mli: Format
