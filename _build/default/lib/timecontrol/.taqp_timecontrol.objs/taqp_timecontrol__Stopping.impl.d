lib/timecontrol/stopping.ml: Float Format List
