lib/timecontrol/strategy.ml: Format Taqp_stats
