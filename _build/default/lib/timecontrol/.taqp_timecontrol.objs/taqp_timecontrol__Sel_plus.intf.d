lib/timecontrol/sel_plus.mli: Taqp_estimators
