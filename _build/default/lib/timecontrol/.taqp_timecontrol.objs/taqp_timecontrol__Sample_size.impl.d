lib/timecontrol/sample_size.ml:
