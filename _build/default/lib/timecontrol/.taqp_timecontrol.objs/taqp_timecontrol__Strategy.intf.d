lib/timecontrol/strategy.mli: Format
