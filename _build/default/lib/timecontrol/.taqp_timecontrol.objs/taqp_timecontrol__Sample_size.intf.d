lib/timecontrol/sample_size.mli:
