lib/workload/generator.ml: Array Float Heap_file Int List Schema Taqp_data Taqp_rng Taqp_storage Tuple Value
