lib/workload/paper_setup.mli: Catalog Generator Ra Taqp_relational Taqp_storage
