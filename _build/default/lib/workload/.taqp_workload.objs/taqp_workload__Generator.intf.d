lib/workload/generator.mli: Heap_file Schema Taqp_data Taqp_rng Taqp_storage
