lib/workload/paper_setup.ml: Catalog Eval Generator Option Predicate Printf Ra Taqp_data Taqp_relational Taqp_rng Taqp_storage
