(** Fixed-range equi-width histograms: used by the workload generators
    to verify attribute distributions and by the benches to report
    per-trial spreads (stages, overspend) compactly. *)

type t

val create : ?bins:int -> lo:float -> hi:float -> unit -> t
(** [bins] defaults to 20. @raise Invalid_argument if [hi <= lo] or
    [bins <= 0]. *)

val add : t -> float -> unit
(** Values outside [lo, hi) are clamped into the edge bins. *)

val count : t -> int
val bin_count : t -> int
val counts : t -> int array
val bin_range : t -> int -> float * float

val quantile : t -> float -> float
(** Approximate quantile by linear interpolation within the bin.
    @raise Invalid_argument outside [0,1] or on an empty histogram. *)

val mode_bin : t -> int
(** Index of the fullest bin (lowest index on ties). *)

val pp : Format.formatter -> t -> unit
(** A one-line sparkline-style rendering. *)
