(** Standard distributions needed by the statistical time-control
    strategies: the paper's d_alpha / d_beta constants correspond to
    normal quantiles of the chosen risk level. *)

val erf : float -> float
(** Error function, Abramowitz–Stegun 7.1.26 (|error| < 1.5e-7). *)

val normal_cdf : ?mu:float -> ?sigma:float -> float -> float
val normal_pdf : ?mu:float -> ?sigma:float -> float -> float

val normal_quantile : ?mu:float -> ?sigma:float -> float -> float
(** Inverse CDF (Acklam's rational approximation, refined by one
    Newton step). @raise Invalid_argument outside (0, 1). *)

val risk_to_d : float -> float
(** [risk_to_d alpha] is the one-sided deviate d such that
    P(X > mu + d*sigma) = alpha for X normal — the paper's d_alpha.
    [risk_to_d 0.5 = 0.]. @raise Invalid_argument outside (0, 1). *)

val d_to_risk : float -> float
(** Inverse of {!risk_to_d}. *)

val binomial_tail_zero : sel:float -> m:int -> float
(** Probability that m independent points, each 1 with probability
    [sel], are all 0 — the combinatorial quantity behind the
    zero-selectivity fix of Section 3.4. *)

val zero_selectivity_fix : beta:float -> m:int -> float
(** The largest selectivity s such that an all-zero sample of [m] points
    still has probability >= [beta]: s = 1 - beta^(1/m). Used when a
    sample selectivity of 0 would stall the One-at-a-Time inflation. *)
