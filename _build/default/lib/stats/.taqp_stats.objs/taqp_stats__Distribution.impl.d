lib/stats/distribution.ml: Array Float
