lib/stats/least_squares.ml: Array Float List
