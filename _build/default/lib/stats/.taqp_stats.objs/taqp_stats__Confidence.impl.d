lib/stats/confidence.ml: Distribution Float Format
