lib/stats/distribution.mli:
