lib/stats/summary.mli:
