lib/stats/least_squares.mli:
