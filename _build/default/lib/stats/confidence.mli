(** Confidence intervals for estimates, reported with every
    time-constrained answer (Section 2's "confidence interval /
    confidence level" vocabulary). *)

type t = { center : float; half_width : float; level : float }

val normal : mean:float -> variance:float -> level:float -> t
(** Normal-approximation interval mean +/- z_{(1+level)/2} * sqrt(var).
    @raise Invalid_argument for level outside (0,1) or variance < 0. *)

val lower : t -> float
val upper : t -> float

val contains : t -> float -> bool

val relative_half_width : t -> float option
(** half_width / |center|, or [None] when the center is 0. *)

val pp : Format.formatter -> t -> unit
