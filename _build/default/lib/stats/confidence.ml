type t = { center : float; half_width : float; level : float }

let normal ~mean ~variance ~level =
  if level <= 0.0 || level >= 1.0 then
    invalid_arg "Confidence.normal: level outside (0,1)";
  if variance < 0.0 then invalid_arg "Confidence.normal: negative variance";
  let z = Distribution.normal_quantile ((1.0 +. level) /. 2.0) in
  { center = mean; half_width = z *. sqrt variance; level }

let lower t = t.center -. t.half_width
let upper t = t.center +. t.half_width
let contains t x = x >= lower t && x <= upper t

let relative_half_width t =
  if t.center = 0.0 then None else Some (t.half_width /. Float.abs t.center)

let pp ppf t =
  Format.fprintf ppf "%.4g +/- %.4g (%.0f%%)" t.center t.half_width
    (100.0 *. t.level)
