(* Abramowitz & Stegun 7.1.26. *)
let erf x =
  let sign = if x < 0.0 then -1.0 else 1.0 in
  let x = Float.abs x in
  let t = 1.0 /. (1.0 +. (0.3275911 *. x)) in
  let a1 = 0.254829592 and a2 = -0.284496736 and a3 = 1.421413741 in
  let a4 = -1.453152027 and a5 = 1.061405429 in
  let poly = ((((a5 *. t +. a4) *. t +. a3) *. t +. a2) *. t +. a1) *. t in
  sign *. (1.0 -. (poly *. exp (-.x *. x)))

let normal_cdf ?(mu = 0.0) ?(sigma = 1.0) x =
  0.5 *. (1.0 +. erf ((x -. mu) /. (sigma *. sqrt 2.0)))

let normal_pdf ?(mu = 0.0) ?(sigma = 1.0) x =
  let z = (x -. mu) /. sigma in
  exp (-0.5 *. z *. z) /. (sigma *. sqrt (2.0 *. Float.pi))

(* Acklam's inverse normal CDF approximation, |relative error| < 1.15e-9,
   then one Newton refinement using the forward CDF. *)
let standard_quantile p =
  if p <= 0.0 || p >= 1.0 then
    invalid_arg "Distribution.normal_quantile: p outside (0,1)";
  if p = 0.5 then 0.0
  else
  let a =
    [| -3.969683028665376e+01; 2.209460984245205e+02; -2.759285104469687e+02;
       1.383577518672690e+02; -3.066479806614716e+01; 2.506628277459239e+00 |]
  in
  let b =
    [| -5.447609879822406e+01; 1.615858368580409e+02; -1.556989798598866e+02;
       6.680131188771972e+01; -1.328068155288572e+01 |]
  in
  let c =
    [| -7.784894002430293e-03; -3.223964580411365e-01; -2.400758277161838e+00;
       -2.549732539343734e+00; 4.374664141464968e+00; 2.938163982698783e+00 |]
  in
  let d =
    [| 7.784695709041462e-03; 3.224671290700398e-01; 2.445134137142996e+00;
       3.754408661907416e+00 |]
  in
  let p_low = 0.02425 in
  let x =
    if p < p_low then begin
      let q = sqrt (-2.0 *. log p) in
      (((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
       *. q
      +. c.(5))
      /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
    end
    else if p <= 1.0 -. p_low then begin
      let q = p -. 0.5 in
      let r = q *. q in
      (((((a.(0) *. r +. a.(1)) *. r +. a.(2)) *. r +. a.(3)) *. r +. a.(4))
       *. r
      +. a.(5))
      *. q
      /. (((((b.(0) *. r +. b.(1)) *. r +. b.(2)) *. r +. b.(3)) *. r +. b.(4))
          *. r
         +. 1.0)
    end
    else begin
      let q = sqrt (-2.0 *. log (1.0 -. p)) in
      -.((((((c.(0) *. q +. c.(1)) *. q +. c.(2)) *. q +. c.(3)) *. q +. c.(4))
         *. q
        +. c.(5)))
      /. ((((d.(0) *. q +. d.(1)) *. q +. d.(2)) *. q +. d.(3)) *. q +. 1.0)
    end
  in
  (* One Newton step against the accurate-enough forward CDF. *)
  let e = normal_cdf x -. p in
  x -. (e /. normal_pdf x)

let normal_quantile ?(mu = 0.0) ?(sigma = 1.0) p = mu +. (sigma *. standard_quantile p)

let risk_to_d alpha =
  if alpha <= 0.0 || alpha >= 1.0 then
    invalid_arg "Distribution.risk_to_d: alpha outside (0,1)";
  standard_quantile (1.0 -. alpha)

let d_to_risk d = 1.0 -. normal_cdf d

let binomial_tail_zero ~sel ~m =
  if m < 0 then invalid_arg "Distribution.binomial_tail_zero: m < 0";
  let sel = Float.min 1.0 (Float.max 0.0 sel) in
  (1.0 -. sel) ** float_of_int m

let zero_selectivity_fix ~beta ~m =
  if beta <= 0.0 || beta >= 1.0 then
    invalid_arg "Distribution.zero_selectivity_fix: beta outside (0,1)";
  if m <= 0 then invalid_arg "Distribution.zero_selectivity_fix: m <= 0";
  1.0 -. (beta ** (1.0 /. float_of_int m))
