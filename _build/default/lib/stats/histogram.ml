type t = {
  lo : float;
  hi : float;
  width : float;
  counts : int array;
  mutable n : int;
}

let create ?(bins = 20) ~lo ~hi () =
  if hi <= lo then invalid_arg "Histogram.create: hi <= lo";
  if bins <= 0 then invalid_arg "Histogram.create: bins <= 0";
  { lo; hi; width = (hi -. lo) /. float_of_int bins; counts = Array.make bins 0; n = 0 }

let bin_of t x =
  let raw = int_of_float (Float.floor ((x -. t.lo) /. t.width)) in
  Int.max 0 (Int.min (Array.length t.counts - 1) raw)

let add t x =
  t.counts.(bin_of t x) <- t.counts.(bin_of t x) + 1;
  t.n <- t.n + 1

let count t = t.n
let bin_count t = Array.length t.counts
let counts t = Array.copy t.counts

let bin_range t i =
  let lo = t.lo +. (float_of_int i *. t.width) in
  (lo, lo +. t.width)

let quantile t q =
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile: q outside [0,1]";
  if t.n = 0 then invalid_arg "Histogram.quantile: empty histogram";
  let target = q *. float_of_int t.n in
  let rec go i acc =
    if i >= Array.length t.counts then t.hi
    else
      let acc' = acc +. float_of_int t.counts.(i) in
      if acc' >= target && t.counts.(i) > 0 then
        let lo, _ = bin_range t i in
        let inside = (target -. acc) /. float_of_int t.counts.(i) in
        lo +. (Float.max 0.0 (Float.min 1.0 inside) *. t.width)
      else go (i + 1) acc'
  in
  go 0 0.0

let mode_bin t =
  let best = ref 0 in
  Array.iteri (fun i c -> if c > t.counts.(!best) then best := i) t.counts;
  !best

let pp ppf t =
  let glyphs = [| ' '; '.'; ':'; '-'; '='; '+'; '*'; '#'; '%'; '@' |] in
  let m = Array.fold_left Int.max 1 t.counts in
  let cell c =
    if c = 0 then ' '
    else glyphs.(Int.min 9 (1 + (c * 8 / m)))
  in
  Format.fprintf ppf "[%s] n=%d range=[%g,%g)"
    (String.init (Array.length t.counts) (fun i -> cell t.counts.(i)))
    t.n t.lo t.hi
