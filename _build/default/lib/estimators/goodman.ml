let occupancy_profile occupancies =
  let m = List.fold_left (fun acc o -> Int.max acc o) 0 occupancies in
  let profile = Array.make (Int.max m 1) 0 in
  List.iter
    (fun o ->
      if o <= 0 then invalid_arg "Goodman.occupancy_profile: occupancy <= 0";
      profile.(o - 1) <- profile.(o - 1) + 1)
    occupancies;
  if m = 0 then [||] else profile

let distinct_observed ~profile = Array.fold_left ( + ) 0 profile

let total_mass profile =
  let acc = ref 0 in
  Array.iteri (fun i f -> acc := !acc + ((i + 1) * f)) profile;
  !acc

let unbiased ~population ~sample ~profile =
  let mass = total_mass profile in
  if sample < mass then invalid_arg "Goodman.unbiased: sample below profile mass";
  if population < float_of_int sample then
    invalid_arg "Goodman.unbiased: population smaller than sample";
  let d = float_of_int (distinct_observed ~profile) in
  if Array.length profile = 0 then 0.0
  else begin
    (* term_i = C(N - n + i - 1, i) / C(n, i), built incrementally:
       term_1 = (N - n) / n,
       term_{i+1} = term_i * (N - n + i) / (n - i) * ... computed as a
       running product of ratios to stay in float range as long as
       possible. *)
    let n = float_of_int sample in
    let excess = population -. n in
    let acc = ref d in
    let term = ref 1.0 in
    (try
       for i = 1 to Array.length profile do
         let fi = float_of_int (i - 1) in
         let numer = excess +. fi in
         let denom = n -. fi in
         if denom <= 0.0 then raise Exit;
         term := !term *. (numer /. denom);
         if not (Float.is_finite !term) then raise Exit;
         let sign = if i mod 2 = 1 then 1.0 else -1.0 in
         acc := !acc +. (sign *. !term *. float_of_int profile.(i - 1))
       done
     with Exit -> ());
    Float.max 0.0 (Float.min population !acc)
  end

let first_order ~population ~sample ~profile =
  let d = float_of_int (distinct_observed ~profile) in
  if sample <= 0 then d
  else begin
    let f1 = if Array.length profile >= 1 then float_of_int profile.(0) else 0.0 in
    let n = float_of_int sample in
    let est = d +. (f1 *. (population -. n) /. n) in
    Float.max d (Float.min population est)
  end

let scale_up ~population ~sample ~distinct =
  if sample <= 0 then 0.0
  else float_of_int distinct *. population /. float_of_int sample

let chao ~profile =
  let d = float_of_int (distinct_observed ~profile) in
  let f1 = if Array.length profile >= 1 then float_of_int profile.(0) else 0.0 in
  let f2 = if Array.length profile >= 2 then float_of_int profile.(1) else 0.0 in
  d +. (f1 *. (f1 -. 1.0) /. (2.0 *. (f2 +. 1.0)))
