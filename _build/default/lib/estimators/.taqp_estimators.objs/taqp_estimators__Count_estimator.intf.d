lib/estimators/count_estimator.mli: Taqp_stats
