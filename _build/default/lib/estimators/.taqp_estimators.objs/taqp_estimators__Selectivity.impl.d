lib/estimators/selectivity.ml: Float Int
