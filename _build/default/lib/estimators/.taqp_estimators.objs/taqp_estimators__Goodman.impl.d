lib/estimators/goodman.ml: Array Float Int List
