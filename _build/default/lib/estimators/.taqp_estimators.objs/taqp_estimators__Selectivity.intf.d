lib/estimators/selectivity.mli:
