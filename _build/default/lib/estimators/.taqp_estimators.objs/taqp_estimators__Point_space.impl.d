lib/estimators/point_space.ml: Format List
