lib/estimators/inclusion_exclusion.ml: List Ra Taqp_relational
