lib/estimators/point_space.mli: Format
