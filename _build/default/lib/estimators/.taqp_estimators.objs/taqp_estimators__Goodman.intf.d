lib/estimators/goodman.mli:
