lib/estimators/count_estimator.ml: Array Float List Taqp_stats
