lib/estimators/inclusion_exclusion.mli: Taqp_relational
