type t = {
  estimate : float;
  variance : float;
  hits : float;
  points : float;
  total_points : float;
  is_exact : bool;
}

let srs_variance_estimate ~p_hat ~m ~n =
  if m < 2.0 then 0.0
  else
    let fpc = if n > 0.0 then Float.max 0.0 ((n -. m) /. n) else 1.0 in
    p_hat *. (1.0 -. p_hat) /. (m -. 1.0) *. fpc

let of_sample ~hits ~points ~total_points =
  if points <= 0.0 then invalid_arg "Count_estimator.of_sample: no points";
  if hits < 0.0 || hits > points then
    invalid_arg "Count_estimator.of_sample: hits outside [0, points]";
  let p_hat = hits /. points in
  (* A degenerate sample (all hits or none) has zero empirical variance;
     Laplace smoothing keeps the reported interval honest there. *)
  let p_var =
    if hits = 0.0 || hits = points then (hits +. 1.0) /. (points +. 2.0)
    else p_hat
  in
  let var_p = srs_variance_estimate ~p_hat:p_var ~m:points ~n:total_points in
  {
    estimate = total_points *. p_hat;
    variance = total_points *. total_points *. var_p;
    hits;
    points;
    total_points;
    is_exact = points >= total_points;
  }

let exact ~count ~total_points =
  {
    estimate = count;
    variance = 0.0;
    hits = count;
    points = total_points;
    total_points;
    is_exact = true;
  }

let cluster_variance_estimate ~counts ~total_blocks ~points_per_block =
  ignore points_per_block;
  let b = float_of_int (Array.length counts) in
  if b < 2.0 then 0.0
  else begin
    let mean = Array.fold_left ( +. ) 0.0 counts /. b in
    let ss =
      Array.fold_left (fun acc y -> acc +. ((y -. mean) ** 2.0)) 0.0 counts
    in
    let s2 = ss /. (b -. 1.0) in
    let fpc =
      if total_blocks > 0.0 then Float.max 0.0 (1.0 -. (b /. total_blocks))
      else 1.0
    in
    total_blocks *. total_blocks *. fpc *. s2 /. b
  end

let combine terms =
  match terms with
  | [] -> invalid_arg "Count_estimator.combine: no terms"
  | _ ->
      List.fold_left
        (fun acc (sign, t) ->
          {
            estimate = acc.estimate +. (float_of_int sign *. t.estimate);
            variance = acc.variance +. t.variance;
            hits = acc.hits +. t.hits;
            points = Float.max acc.points t.points;
            total_points = Float.max acc.total_points t.total_points;
            is_exact = acc.is_exact && t.is_exact;
          })
        {
          estimate = 0.0;
          variance = 0.0;
          hits = 0.0;
          points = 0.0;
          total_points = 0.0;
          is_exact = true;
        }
        terms

let confidence ?(level = 0.95) t =
  Taqp_stats.Confidence.normal ~mean:t.estimate ~variance:t.variance ~level
