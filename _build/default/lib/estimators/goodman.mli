(** Goodman's estimator of the number of classes in a population
    [Good 49], revised for projection counts in [HoOT 88].

    [COUNT(project(E))] is the number of distinct groups of qualifying
    points. Given a simple random sample of [sample] elements from a
    population of [population], with [f.(i-1)] = number of classes seen
    exactly i times, the unique unbiased estimator of the number of
    classes is

    D = d + sum_i (-1)^(i+1) * C(population - sample + i - 1, i)
                             / C(sample, i) * f_i

    (valid when the sample is at least as large as the largest class;
    its variance explodes as the sampling fraction shrinks, which is
    why a first-order stabilized form is also provided). *)

val occupancy_profile : int list -> int array
(** From group occupancies (each >= 1) to the f_i profile:
    [profile.(i-1)] = number of groups with occupancy i.
    @raise Invalid_argument on non-positive occupancies. *)

val unbiased : population:float -> sample:int -> profile:int array -> float
(** Goodman's estimator. The alternating series is evaluated with
    ratio-form terms to avoid overflow; the result is clamped to
    [0, population] (the unbiased estimator may legitimately fall below
    the observed class count d).
    @raise Invalid_argument if [sample] < total profile mass or
    [population] < [sample]. *)

val first_order : population:float -> sample:int -> profile:int array -> float
(** The series truncated after i = 1: d + f_1 * (population - sample) /
    sample — biased but stable; the practical "revised" form. *)

val distinct_observed : profile:int array -> int

val scale_up : population:float -> sample:int -> distinct:int -> float
(** Naive scale-up d * population / sample, the baseline projection
    estimators are compared against. *)

val chao : profile:int array -> float
(** Chao's bias-corrected lower-bound estimator
    d + f1(f1-1)/(2(f2+1)) — far more stable than the Goodman series
    when classes have comparable sizes; the library's default
    projection estimator (a modern stand-in for [HoOT 88]'s
    unspecified "revised" Goodman). *)
