type dim = { name : string; tuples : int; blocks : int; blocking_factor : int }

type t = { dims : dim list }

let make dims =
  if dims = [] then invalid_arg "Point_space.make: no dimensions";
  List.iter
    (fun d ->
      if d.tuples <= 0 || d.blocks <= 0 || d.blocking_factor <= 0 then
        invalid_arg "Point_space.make: non-positive dimension sizes")
    dims;
  { dims }

let dims t = t.dims
let n_dims t = List.length t.dims

let total_points t =
  List.fold_left (fun acc d -> acc *. float_of_int d.tuples) 1.0 t.dims

let total_space_blocks t =
  List.fold_left (fun acc d -> acc *. float_of_int d.blocks) 1.0 t.dims

let points_per_space_block t =
  List.fold_left (fun acc d -> acc *. float_of_int d.blocking_factor) 1.0 t.dims

let space_block_of_disk_blocks t disk_blocks =
  if List.length disk_blocks <> n_dims t then
    invalid_arg "Point_space.space_block_of_disk_blocks: rank mismatch";
  List.fold_left2
    (fun acc d b ->
      if b < 0 || b >= d.blocks then
        invalid_arg "Point_space.space_block_of_disk_blocks: out of range";
      (acc * d.blocks) + b)
    0 t.dims disk_blocks

let disk_blocks_of_space_block t index =
  let total = int_of_float (total_space_blocks t) in
  if index < 0 || index >= total then
    invalid_arg "Point_space.disk_blocks_of_space_block: out of range";
  let rev_dims = List.rev t.dims in
  let rec go index acc = function
    | [] -> acc
    | d :: rest -> go (index / d.blocks) (index mod d.blocks :: acc) rest
  in
  go index [] rev_dims

let pp ppf t =
  let pp_dim ppf d =
    Format.fprintf ppf "%s:%dt/%db" d.name d.tuples d.blocks
  in
  Format.fprintf ppf "[%a] N=%g B=%g"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " x ")
       pp_dim)
    t.dims (total_points t) (total_space_blocks t)
