(** The Principle-of-Inclusion-and-Exclusion rewrite (Sections 2 and
    4.2): [COUNT(E)] for an arbitrary RA expression becomes a signed
    sum of [COUNT(E_i')] over expressions containing only Select, Join,
    Intersect and Project.

    Union and Difference first get pulled to the top (Select, Join and
    Intersect distribute over both; Project distributes over Union but
    {e not} over Difference), then

    - COUNT(a U b)  = COUNT(a) + COUNT(b) - COUNT(a n b)
    - COUNT(a - b)  = COUNT(a) - COUNT(a n b)

    applied recursively, with intersections of unions themselves
    distributed. *)

exception Unsupported of string
(** Raised for a Project over a Difference, where the rewrite is not
    sound (projection does not distribute over set difference). *)

val rewrite : Taqp_relational.Ra.t -> (int * Taqp_relational.Ra.t) list
(** Signed SJIP terms; coefficients are +1/-1 per occurrence (terms are
    not algebraically merged). The input expression's count equals the
    signed sum of the terms' counts under set semantics.
    @raise Unsupported per above. *)

val term_count : Taqp_relational.Ra.t -> int
(** Number of terms {!rewrite} would produce (exponential in the
    number of Union/Difference nodes — useful for cost warnings). *)
