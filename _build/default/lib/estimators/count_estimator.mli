(** COUNT estimators and their variance formulas ([HoOT 88]).

    For a Select-Join-Intersect term, the estimate scales the sample's
    hit proportion up to the point space:
    y_hat = N * (hits / points_evaluated) — the simple-random form
    y(E) = N*(y/m); when the evaluated points are exactly the cross
    product of sampled disk blocks this coincides with the cluster form
    Y_b(E) = B * (sum y_i / b).

    Variances: [srs_variance_estimate] is the paper's cheap
    approximation (treat the evaluated points as a simple random sample
    of points); [cluster_variance_estimate] is the exact one from
    per-space-block counts. The prototype uses the approximation and
    Section 5 discusses the resulting optimism; our ablation bench
    quantifies it. *)

type t = {
  estimate : float;
  variance : float;  (** estimated variance of [estimate] *)
  hits : float;  (** output tuples observed in the sample *)
  points : float;  (** points of the space evaluated *)
  total_points : float;  (** N *)
  is_exact : bool;  (** the whole point space has been evaluated *)
}

val of_sample :
  hits:float -> points:float -> total_points:float -> t
(** Ratio estimate with the SRS variance approximation.
    @raise Invalid_argument if [points <= 0] or [hits < 0] or
    [hits > points]. *)

val exact : count:float -> total_points:float -> t
(** The degenerate estimator once the whole space has been evaluated:
    zero variance. *)

val srs_variance_estimate : p_hat:float -> m:float -> n:float -> float
(** Estimated variance of the hit {e proportion} from a simple random
    sample of [m] of [n] points with sample proportion [p_hat]:
    p(1-p)/(m-1) * (n-m)/n, with finite-population correction. 0 when
    m < 2. *)

val cluster_variance_estimate :
  counts:float array -> total_blocks:float -> points_per_block:float -> float
(** Estimated variance of the count estimate B*(mean y_i), from the
    sampled space-block counts [counts]: B^2 * (1 - b/B) * s_y^2 / b. *)

val combine : (int * t) list -> t
(** Signed sum over inclusion-exclusion terms; variances add
    (independence approximation, documented in DESIGN.md). *)

val confidence : ?level:float -> t -> Taqp_stats.Confidence.t
(** Normal-approximation interval, default level 0.95. *)
