open Taqp_relational

exception Unsupported of string

(* Pull Union/Difference to the top of the tree: Select, Join and
   Intersect distribute over both; Project distributes over Union only. *)
let rec lift (e : Ra.t) : Ra.t =
  match e with
  | Ra.Relation _ -> e
  | Ra.Select (p, c) -> (
      match lift c with
      | Ra.Union (a, b) -> Ra.Union (lift (Ra.Select (p, a)), lift (Ra.Select (p, b)))
      | Ra.Difference (a, b) ->
          Ra.Difference (lift (Ra.Select (p, a)), lift (Ra.Select (p, b)))
      | c' -> Ra.Select (p, c'))
  | Ra.Project (ns, c) -> (
      match lift c with
      | Ra.Union (a, b) ->
          Ra.Union (lift (Ra.Project (ns, a)), lift (Ra.Project (ns, b)))
      | Ra.Difference (_, _) ->
          raise
            (Unsupported
               "projection over a set difference cannot be rewritten by \
                inclusion-exclusion")
      | c' -> Ra.Project (ns, c'))
  | Ra.Join (p, l, r) -> (
      match lift l with
      | Ra.Union (a, b) ->
          Ra.Union (lift (Ra.Join (p, a, r)), lift (Ra.Join (p, b, r)))
      | Ra.Difference (a, b) ->
          Ra.Difference (lift (Ra.Join (p, a, r)), lift (Ra.Join (p, b, r)))
      | l' -> (
          match lift r with
          | Ra.Union (a, b) ->
              Ra.Union (lift (Ra.Join (p, l', a)), lift (Ra.Join (p, l', b)))
          | Ra.Difference (a, b) ->
              Ra.Difference
                (lift (Ra.Join (p, l', a)), lift (Ra.Join (p, l', b)))
          | r' -> Ra.Join (p, l', r')))
  | Ra.Intersect (l, r) -> intersect (lift l) (lift r)
  | Ra.Union (l, r) -> Ra.Union (lift l, lift r)
  | Ra.Difference (l, r) -> Ra.Difference (lift l, lift r)

(* Smart intersection that distributes over lifted Union/Difference:
   a n (x U y) = (a n x) U (a n y);  a n (x - y) = (a n x) - (a n y). *)
and intersect a b =
  match a with
  | Ra.Union (x, y) -> Ra.Union (intersect x b, intersect y b)
  | Ra.Difference (x, y) -> Ra.Difference (intersect x b, intersect y b)
  | _ -> (
      match b with
      | Ra.Union (x, y) -> Ra.Union (intersect a x, intersect a y)
      | Ra.Difference (x, y) -> Ra.Difference (intersect a x, intersect a y)
      | _ -> Ra.Intersect (a, b))

(* Expand a lifted tree into signed SJIP terms. *)
let rec expand sign (e : Ra.t) : (int * Ra.t) list =
  match e with
  | Ra.Union (a, b) ->
      expand sign a @ expand sign b @ expand (-sign) (intersect a b)
  | Ra.Difference (a, b) -> expand sign a @ expand (-sign) (intersect a b)
  | _ -> [ (sign, e) ]

let rewrite e = expand 1 (lift e)

let term_count e = List.length (rewrite e)
