(** The point space of an expression (Section 2, Figures 2.1/2.2).

    An expression with operand-relation occurrences r_1..r_n is an
    n-dimensional space of prod |r_i| points; each point is one
    combination of operand tuples and takes value 1 iff the combination
    produces an output tuple. Under the cluster plan the space is also
    viewed as prod D_i space blocks, each mapping to one combination of
    disk blocks. Counts are floats: a three-way join of 10^4-tuple
    relations already has 10^12 points. *)

type dim = {
  name : string;  (** relation occurrence (alias) *)
  tuples : int;  (** |r_i| *)
  blocks : int;  (** D_i *)
  blocking_factor : int;
}

type t

val make : dim list -> t
(** @raise Invalid_argument on an empty list or non-positive sizes. *)

val dims : t -> dim list
val n_dims : t -> int

val total_points : t -> float
(** N = prod |r_i|. *)

val total_space_blocks : t -> float
(** B = prod D_i. *)

val points_per_space_block : t -> float
(** prod of blocking factors (full blocks). *)

val space_block_of_disk_blocks : t -> int list -> int
(** Row-major index of the space block for one disk-block combination
    (Figure 2.2's mapping). @raise Invalid_argument on rank or range
    errors. Inverse of {!disk_blocks_of_space_block}. *)

val disk_blocks_of_space_block : t -> int -> int list

val pp : Format.formatter -> t -> unit
