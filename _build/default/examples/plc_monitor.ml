(* Programmable-logic-controller monitoring — the paper's own motivating
   application ([OzHO 88]: "we are presently using the approach of this
   paper to build a database system for programmable logic controllers").

   A PLC scan cycle has a fixed budget: the controller reads inputs,
   evaluates its rules, and writes outputs every cycle, no exceptions.
   Here one rule needs an aggregate over the event history: "how many
   over-temperature events coincide with a high-pressure reading of the
   same unit?" — a join the controller can never afford exactly. The
   time-constrained evaluator answers within whatever slice of the
   cycle the rule engine grants, with a hard abort at the deadline.

     dune exec examples/plc_monitor.exe *)

open Taqp_data
module Taqp = Taqp_core.Taqp
module Report = Taqp_core.Report
module Config = Taqp_core.Config
module Stopping = Taqp_timecontrol.Stopping
module Heap_file = Taqp_storage.Heap_file
module Catalog = Taqp_storage.Catalog
module Prng = Taqp_rng.Prng

let schema =
  Schema.make
    [
      { Schema.name = "event_id"; ty = Value.Tint };
      { Schema.name = "unit"; ty = Value.Tint };
      { Schema.name = "reading"; ty = Value.Tint };
    ]

(* Synthetic event logs: 8,000 temperature events and 8,000 pressure
   events across 40 production units; readings 0..999. *)
let event_log ~rng ~n =
  let tuples =
    Array.init n (fun i ->
        Tuple.of_list
          [
            Value.Int i;
            Value.Int (Prng.int rng 40);
            Value.Int (Prng.int rng 1000);
          ])
  in
  Taqp_rng.Sample.shuffle rng tuples;
  Heap_file.create ~tuple_bytes:128 ~schema (Array.to_list tuples)

(* The paper's planned "main-memory-only version ... very promising for
   real-time database applications" (Section 4): the fast device models
   samples processed entirely in memory, so budgets are milliseconds. *)
let params = Taqp_storage.Cost_params.fast

let () =
  let rng = Prng.create 2026 in
  let catalog =
    Catalog.of_list
      [
        ("temperature", event_log ~rng ~n:8_000);
        ("pressure", event_log ~rng ~n:8_000);
      ]
  in
  let query =
    Taqp.parse
      "count(join[t.unit = p.unit]\n\
      \        (select[reading > 900](temperature as t),\n\
      \         select[reading > 900](pressure as p)))"
  in
  let exact = Taqp.count_exact catalog query in
  Fmt.pr "Rule aggregate: correlated over-temperature / high-pressure events@.";
  Fmt.pr "Exact answer (unaffordable inside a scan cycle): %d@.@." exact;

  (* The PLC grants the rule engine different budgets depending on how
     loaded the cycle is. Hard deadline: the answer MUST be in on time. *)
  let budgets = [ 0.010; 0.025; 0.050; 0.200 ] in
  Fmt.pr "%8s  %10s  %22s  %7s  %7s@." "budget" "estimate" "95% interval" "blocks"
    "outcome";
  List.iter
    (fun quota ->
      let config =
        {
          Config.default with
          Config.stopping = Stopping.Hard_deadline;
          (* designer cost constants re-calibrated for the in-memory
             device, as the prototype's were for its SUN 3/60 *)
          initial_cost_scale = 0.01;
        }
      in
      let report = Taqp.count_within ~config ~params ~seed:5 catalog ~quota query in
      Fmt.pr "%7gs  %10.0f  [%8.0f, %8.0f]  %7d  %s@." quota
        report.Report.estimate
        (Taqp_stats.Confidence.lower report.Report.confidence)
        (Taqp_stats.Confidence.upper report.Report.confidence)
        report.Report.useful_blocks
        (Report.outcome_name report.Report.outcome))
    budgets;
  Fmt.pr
    "@.Every run returned at its deadline. Tighter cycles get wider \
     intervals; a budget too small for even one sample block (10 ms \
     here) returns the empty prior, still on time.@."
