examples/dashboard.mli:
