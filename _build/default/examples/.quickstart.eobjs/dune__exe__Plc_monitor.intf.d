examples/plc_monitor.mli:
