examples/impatient_analyst.mli:
