examples/dashboard.ml: Array Fmt List Schema Taqp_core Taqp_data Taqp_rng Taqp_stats Taqp_storage Tuple Value
