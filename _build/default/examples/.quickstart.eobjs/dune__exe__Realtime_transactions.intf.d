examples/realtime_transactions.mli:
