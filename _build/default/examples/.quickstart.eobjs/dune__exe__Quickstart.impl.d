examples/quickstart.ml: Fmt List Taqp_core Taqp_relational Taqp_stats Taqp_timecontrol Taqp_workload
