examples/quickstart.mli:
