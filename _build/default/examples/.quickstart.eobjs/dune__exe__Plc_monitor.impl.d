examples/plc_monitor.ml: Array Fmt List Schema Taqp_core Taqp_data Taqp_rng Taqp_stats Taqp_storage Taqp_timecontrol Tuple Value
