(* Multiuser real-time transactions ([AbGM 88], Section 1: "by
   precisely fixing the execution times of database queries in a
   transaction, accurate estimates for transaction execution times
   become possible ... minimizing the number of transactions that miss
   their deadlines").

   A stream of transactions each embeds one aggregate query and a
   deadline. With exact evaluation the scheduler cannot bound query
   time, so deadline misses are frequent; with the time-constrained
   evaluator each query is given a fixed quota and every transaction's
   duration becomes predictable.

     dune exec examples/realtime_transactions.exe *)

module Taqp = Taqp_core.Taqp
module Report = Taqp_core.Report
module Config = Taqp_core.Config
module Stopping = Taqp_timecontrol.Stopping
module Paper_setup = Taqp_workload.Paper_setup

type transaction = {
  name : string;
  query : Taqp_relational.Ra.t;
  catalog : Taqp_storage.Catalog.t;
  exact : int;
  deadline : float;  (** whole-transaction deadline, seconds *)
  other_work : float;  (** non-query work inside the transaction *)
}

let transactions =
  let sel = Paper_setup.selection ~output:2_500 ~seed:31 () in
  let join = Paper_setup.join ~seed:32 () in
  let inter = Paper_setup.intersection ~overlap:4_000 ~seed:33 () in
  [
    {
      name = "inventory-threshold";
      query = sel.Paper_setup.query;
      catalog = sel.Paper_setup.catalog;
      exact = sel.Paper_setup.exact;
      deadline = 4.0;
      other_work = 0.8;
    };
    {
      name = "order-fulfilment-join";
      query = join.Paper_setup.query;
      catalog = join.Paper_setup.catalog;
      exact = join.Paper_setup.exact;
      deadline = 3.0;
      other_work = 0.5;
    };
    {
      name = "replica-divergence";
      query = inter.Paper_setup.query;
      catalog = inter.Paper_setup.catalog;
      exact = inter.Paper_setup.exact;
      deadline = 6.0;
      other_work = 1.0;
    };
  ]

let () =
  Fmt.pr
    "Each transaction gets quota = deadline - other_work for its query; \
     hard abort at the quota.@.@.";
  Fmt.pr "%-24s %9s %9s %10s %8s %10s@." "transaction" "deadline" "quota"
    "estimate" "error" "met?";
  let met = ref 0 in
  List.iter
    (fun t ->
      let quota = t.deadline -. t.other_work in
      let config =
        {
          Config.default with
          Config.stopping = Stopping.Hard_deadline;
          initial_selectivities =
            { Config.no_initial_overrides with Config.join = Some 0.01 };
        }
      in
      let r = Taqp.count_within ~config ~seed:8 t.catalog ~quota t.query in
      let total = r.Report.elapsed +. t.other_work in
      let ok = total <= t.deadline +. 1e-6 in
      if ok then incr met;
      Fmt.pr "%-24s %8gs %8gs %10.0f %7.1f%% %10s@." t.name t.deadline quota
        r.Report.estimate
        (100.0 *. Taqp.estimate_error ~report:r ~exact:t.exact)
        (if ok then "yes" else "MISSED"))
    transactions;
  Fmt.pr "@.%d/%d transactions met their deadlines — by construction: the@."
    !met (List.length transactions);
  Fmt.pr
    "query can never run past its quota, so transaction time is schedulable.@."
