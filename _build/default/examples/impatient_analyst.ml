(* The "impatient user" (Section 1): an interactive environment where
   the time constraint is minutes of a person's patience rather than a
   controller deadline.

   Two interaction styles over the same analytical join:
   - time-boxed: "give me whatever you have in N seconds";
   - error-boxed: "work until you are within 10%, but never longer
     than a minute" — the error-constrained stopping criterion of
     Section 3.2, combined with a deadline.

     dune exec examples/impatient_analyst.exe *)

module Taqp = Taqp_core.Taqp
module Report = Taqp_core.Report
module Config = Taqp_core.Config
module Stopping = Taqp_timecontrol.Stopping

let () =
  let workload = Taqp_workload.Paper_setup.join ~seed:11 () in
  Fmt.pr "Analytical query: %a@." Taqp_relational.Ra.pp workload.query;
  Fmt.pr "Exact count %d; a full evaluation takes minutes on this device.@.@."
    workload.exact;

  (* Style 1: a ladder of patience. *)
  Fmt.pr "-- Time-boxed: press Enter when bored --@.";
  Fmt.pr "%8s  %10s  %8s  %9s  %7s@." "patience" "estimate" "error" "+/-(95%)"
    "stages";
  List.iter
    (fun quota ->
      let config =
        {
          Config.default with
          Config.initial_selectivities =
            { Config.no_initial_overrides with Config.join = Some 0.01 };
        }
      in
      let r = Taqp.count_within ~config ~seed:3 workload.catalog ~quota workload.query in
      Fmt.pr "%7gs  %10.0f  %7.1f%%  %9.0f  %7d@." quota r.Report.estimate
        (100.0 *. Taqp.estimate_error ~report:r ~exact:workload.exact)
        r.Report.confidence.Taqp_stats.Confidence.half_width
        r.Report.stages_completed)
    [ 1.0; 2.5; 5.0; 15.0; 60.0 ];

  (* Style 2: error-constrained with a deadline backstop. *)
  Fmt.pr "@.-- Error-boxed: stop at +/-10%% or 120 s, whichever first --@.";
  let config =
    {
      Config.default with
      Config.stopping =
        Stopping.All
          [
            Stopping.Error_bound { relative = 0.10; level = 0.95 };
            Stopping.Hard_deadline;
          ];
      initial_selectivities =
        { Config.no_initial_overrides with Config.join = Some 0.01 };
    }
  in
  let r = Taqp.count_within ~config ~seed:3 workload.catalog ~quota:120.0 workload.query in
  Fmt.pr
    "stopped after %.1f s (%d stages): estimate %.0f, true error %.1f%%, \
     outcome %s@."
    r.Report.elapsed r.Report.stages_completed r.Report.estimate
    (100.0 *. Taqp.estimate_error ~report:r ~exact:workload.exact)
    (Report.outcome_name r.Report.outcome)
