(* A live dashboard refresh: several aggregates over a sales log, all
   answered within one refresh budget.

   Each tile of the dashboard is one aggregate — a count, a sum, an
   average, and a top-regions breakdown — and the whole refresh must
   finish in a fixed budget. This exercises the library's extensions:
   SUM/AVG estimators and per-group count estimates.

     dune exec examples/dashboard.exe *)

open Taqp_data
module Taqp = Taqp_core.Taqp
module Report = Taqp_core.Report
module Config = Taqp_core.Config
module Aggregate = Taqp_core.Aggregate
module Heap_file = Taqp_storage.Heap_file
module Catalog = Taqp_storage.Catalog
module Prng = Taqp_rng.Prng
module Zipf = Taqp_rng.Zipf

let schema =
  Schema.make
    [
      { Schema.name = "order_id"; ty = Value.Tint };
      { Schema.name = "region"; ty = Value.Tint };
      { Schema.name = "amount"; ty = Value.Tint };
      { Schema.name = "priority"; ty = Value.Tint };
    ]

(* 20,000 orders; regions Zipf-skewed (a few hot markets), amounts
   1..2000, ~10% high priority. *)
let orders ~rng ~n =
  let zipf = Zipf.create ~n:12 ~s:1.1 in
  let tuples =
    Array.init n (fun i ->
        Tuple.of_list
          [
            Value.Int i;
            Value.Int (Zipf.draw zipf rng);
            Value.Int (1 + Prng.int rng 2000);
            Value.Int (Prng.int rng 10);
          ])
  in
  Taqp_rng.Sample.shuffle rng tuples;
  Heap_file.create ~tuple_bytes:100 ~schema (Array.to_list tuples)

let () =
  let rng = Prng.create 404 in
  let catalog = Catalog.of_list [ ("orders", orders ~rng ~n:20_000) ] in
  let budget_per_tile = 3.0 in
  Fmt.pr "Dashboard refresh: %g simulated seconds per tile, 20,000 orders@.@."
    budget_per_tile;

  let tile name aggregate query =
    let expr = Taqp.parse query in
    let r =
      Taqp.aggregate_within ~seed:2 ~aggregate catalog ~quota:budget_per_tile
        expr
    in
    let truth = Taqp.aggregate_exact catalog ~aggregate expr in
    Fmt.pr "%-28s %12.0f  (+/- %8.0f)   true %10.0f@." name
      r.Report.estimate r.Report.confidence.Taqp_stats.Confidence.half_width
      truth;
    r
  in
  ignore (tile "high-priority orders" Aggregate.Count "select[priority >= 9](orders)");
  ignore (tile "revenue (sum of amount)" (Aggregate.Sum "amount") "orders");
  ignore
    (tile "avg large-order amount" (Aggregate.Avg "amount")
       "select[amount > 1500](orders)");

  (* Top regions: group estimates from a projection tile. *)
  let r =
    Taqp.count_within ~seed:2 catalog ~quota:budget_per_tile
      (Taqp.parse "project[region](orders)")
  in
  Fmt.pr "@.top regions by estimated order count:@.";
  List.iteri
    (fun i (label, est) ->
      if i < 5 then Fmt.pr "  %d. region %-6s ~%7.0f orders@." (i + 1) label est)
    r.Report.groups;
  Fmt.pr "@.(every tile returned on budget; intervals shrink with the budget)@."
