(* Quickstart: estimate a COUNT under a 10-second quota.

   Build a 10,000-tuple relation (the paper's experimental layout),
   parse an RA query, and ask for the count within a time budget on the
   simulated 1989-class device. Run with:

     dune exec examples/quickstart.exe *)

module Taqp = Taqp_core.Taqp
module Report = Taqp_core.Report
module Config = Taqp_core.Config
module Stopping = Taqp_timecontrol.Stopping

let () =
  (* A relation with exactly 1,000 tuples satisfying [sel < 1000]. *)
  let workload = Taqp_workload.Paper_setup.selection ~output:1_000 ~seed:7 () in
  let query = Taqp.parse "count(select[sel < 1000](r))" in

  Fmt.pr "Query:       %a@." Taqp_relational.Ra.pp query;
  Fmt.pr "Exact count: %d (a full scan would take minutes on this device)@."
    workload.exact;

  (* Hard 10-second quota: the run is interrupted at the deadline, like
     the paper's timer interrupt. *)
  let report = Taqp.count_within ~seed:1 workload.catalog ~quota:10.0 query in
  Fmt.pr "@.Within 10 simulated seconds:@.";
  Fmt.pr "  estimate    %.0f  (true: %d)@." report.Report.estimate workload.exact;
  Fmt.pr "  95%% interval %a@." Taqp_stats.Confidence.pp report.Report.confidence;
  Fmt.pr "  stages      %d, blocks sampled %d of 2000, utilization %.0f%%@."
    report.Report.stages_completed report.Report.useful_blocks
    (100.0 *. report.Report.utilization);

  (* Per-stage trace: watch the estimate improve. *)
  Fmt.pr "@.Stage by stage:@.";
  List.iter (fun s -> Fmt.pr "  %a@." Report.pp_stage s) report.Report.trace;

  (* The same call with an enormous quota degrades gracefully into the
     exact answer. *)
  let exact_run =
    Taqp.count_within ~seed:1 workload.catalog ~quota:1e6 query
  in
  Fmt.pr "@.With an unbounded quota: %.0f [%s]@." exact_run.Report.estimate
    (Report.outcome_name exact_run.Report.outcome)
