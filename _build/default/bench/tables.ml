(* Reproduction of the paper's Section 5 tables (Figures 5.1-5.3).

   Each row: a d_beta value; each entry aggregated over [trials]
   independent runs of the time-constrained executor on a fresh virtual
   device (fresh jitter stream and fresh samples per trial, same
   populated relations per table, as in ERAM). Columns match the paper:

   - stages: average number of completed stages;
   - risk: percentage of trials in which the final stage ran past the
     quota (ERAM's observe mode measured the same way);
   - ovsp: average seconds overspent among those trials;
   - utilization: percentage of the quota spent on stages whose results
     count;
   - blocks: average disk blocks evaluated within the quota.

   relerr (|estimate - exact| / exact) is ours — the paper deferred
   estimator accuracy to [HoOT 88]. *)

module Config = Taqp_core.Config
module Report = Taqp_core.Report
module Taqp = Taqp_core.Taqp
module Strategy = Taqp_timecontrol.Strategy
module Stopping = Taqp_timecontrol.Stopping
module Paper_setup = Taqp_workload.Paper_setup

type row = {
  d_beta : float;
  stages : float;
  risk : float;  (** percent *)
  ovsp : float;  (** seconds, averaged over overspending trials *)
  utilization : float;  (** percent *)
  blocks : float;
  relerr : float;
}

type table = {
  title : string;
  quota : float;
  exact : int;
  rows : row list;
  paper_note : string;
}

let d_betas = [ 0.0; 12.0; 24.0; 48.0; 72.0 ]

(* ERAM's experimental mode: do not abort the last stage, measure how
   far past the quota it ran ("ovsp"). *)
let observe_config ~d_beta ~init_join =
  {
    Config.default with
    Config.strategy = Strategy.one_at_a_time ~d_beta ();
    stopping = Stopping.Soft_deadline { grace = 1e9 };
    trace = false;
    initial_selectivities =
      { Config.no_initial_overrides with Config.join = init_join };
  }

let run_row ~wl ~quota ~d_beta ~init_join ~trials =
  let stages = ref 0.0
  and risks = ref 0
  and ovsp = ref 0.0
  and util = ref 0.0
  and blocks = ref 0.0
  and err = ref 0.0 in
  for seed = 1 to trials do
    let config = observe_config ~d_beta ~init_join in
    let r =
      Taqp.count_within ~config ~seed wl.Paper_setup.catalog ~quota
        wl.Paper_setup.query
    in
    stages := !stages +. float_of_int r.Report.stages_completed;
    if r.Report.outcome = Report.Overspent then begin
      incr risks;
      ovsp := !ovsp +. r.Report.overspend
    end;
    util := !util +. r.Report.utilization;
    blocks := !blocks +. float_of_int r.Report.useful_blocks;
    err := !err +. Taqp.estimate_error ~report:r ~exact:wl.Paper_setup.exact
  done;
  let fn = float_of_int trials in
  {
    d_beta;
    stages = !stages /. fn;
    risk = 100.0 *. float_of_int !risks /. fn;
    ovsp = (if !risks > 0 then !ovsp /. float_of_int !risks else 0.0);
    utilization = 100.0 *. !util /. fn;
    blocks = !blocks /. fn;
    relerr = !err /. fn;
  }

let sweep ~title ~wl ~quota ~init_join ~trials ~paper_note =
  let rows =
    List.map (fun d_beta -> run_row ~wl ~quota ~d_beta ~init_join ~trials) d_betas
  in
  { title; quota; exact = wl.Paper_setup.exact; rows; paper_note }

let print_table t =
  Fmt.pr "@.=== %s ===@." t.title;
  Fmt.pr "quota = %g s, exact count = %d@." t.quota t.exact;
  Fmt.pr "d_b  | stages  risk%%   ovsp  utilization%%  blocks  relerr@.";
  Fmt.pr "-----+--------------------------------------------------@.";
  List.iter
    (fun r ->
      Fmt.pr "%4g | %6.2f  %5.1f  %5.2f  %12.1f  %6.1f  %6.3f@." r.d_beta
        r.stages r.risk r.ovsp r.utilization r.blocks r.relerr)
    t.rows;
  Fmt.pr "paper: %s@." t.paper_note

(* ------------------------------------------------------------------ *)
(* Figure 5.1: selection, quota 10 s, two output sizes                 *)

let table_5_1 ?(trials = 200) () =
  let a =
    sweep ~title:"Figure 5.1a  selection, 1,000 output tuples"
      ~wl:(Paper_setup.selection ~output:1_000 ~seed:101 ())
      ~quota:10.0 ~init_join:None ~trials
      ~paper_note:
        "stages 1.56->4.12, risk 56->2, ovsp 0.11->0.02, util 63->93, \
         blocks 54->94->93 (rise then dip)"
  in
  let b =
    sweep ~title:"Figure 5.1b  selection, 5,000 output tuples"
      ~wl:(Paper_setup.selection ~output:5_000 ~seed:102 ())
      ~quota:10.0 ~init_join:None ~trials
      ~paper_note:
        "same shape as 5.1a at selectivity 0.5 (risk falls, utilization \
         rises, blocks peak then dip)"
  in
  [ a; b ]

(* ------------------------------------------------------------------ *)
(* Figure 5.2: intersection, quota 10 s, 10,000 output tuples          *)

let table_5_2 ?(trials = 200) () =
  [
    sweep ~title:"Figure 5.2  intersection, 10,000 output tuples"
      ~wl:(Paper_setup.intersection ~seed:103 ())
      ~quota:10.0 ~init_join:None ~trials
      ~paper_note:
        "risk 44->0, ovsp 0.18->0.00, blocks 41.8->54.1->51.9; at the \
         largest d_beta the time left no longer fits a further \
         full-fulfillment stage";
  ]

(* ------------------------------------------------------------------ *)
(* Figure 5.3: join, quota 2.5 s, 70,000 output tuples                 *)

(* The paper assumed initial join selectivity 0.1 against its cost
   surface; on ours the same pages-dominated first-stage sizing needs
   0.01 for the first stage to observe any join output (EXPERIMENTS.md
   discusses the substitution). *)
let table_5_3 ?(trials = 200) () =
  [
    sweep ~title:"Figure 5.3  join, 70,000 output tuples"
      ~wl:(Paper_setup.join ~seed:104 ())
      ~quota:2.5 ~init_join:(Some 0.01) ~trials
      ~paper_note:
        "stages 1.59->1.94, risk 41->5.3->0, ovsp 0.19->0, util 71->91->83, \
         blocks 25.9->22.1 (declining); larger d_beta leaves too little \
         time for a further stage";
  ]

let all ?trials () =
  table_5_1 ?trials () @ table_5_2 ?trials () @ table_5_3 ?trials ()
