(* Ablations over the implementation decisions of Figure 3.2: each
   table quantifies one row of the paper's decision matrix. *)

module Config = Taqp_core.Config
module Report = Taqp_core.Report
module Taqp = Taqp_core.Taqp
module Strategy = Taqp_timecontrol.Strategy
module Stopping = Taqp_timecontrol.Stopping
module Plan = Taqp_sampling.Plan
module Paper_setup = Taqp_workload.Paper_setup
module Generator = Taqp_workload.Generator
module Summary = Taqp_stats.Summary
module Catalog = Taqp_storage.Catalog
module Ra = Taqp_relational.Ra
module Predicate = Taqp_relational.Predicate

let observe_stopping = Stopping.Soft_deadline { grace = 1e9 }

type agg = {
  risk : float;
  utilization : float;
  blocks : float;
  relerr : float;
  stages : float;
}

let aggregate ~wl ~quota ~config ~trials =
  let risks = ref 0 and util = ref 0.0 and blocks = ref 0.0 in
  let err = ref 0.0 and stages = ref 0.0 in
  for seed = 1 to trials do
    let r =
      Taqp.count_within ~config ~seed wl.Paper_setup.catalog ~quota
        wl.Paper_setup.query
    in
    if r.Report.outcome = Report.Overspent then incr risks;
    util := !util +. r.Report.utilization;
    blocks := !blocks +. float_of_int r.Report.useful_blocks;
    err := !err +. Taqp.estimate_error ~report:r ~exact:wl.Paper_setup.exact;
    stages := !stages +. float_of_int r.Report.stages_completed
  done;
  let fn = float_of_int trials in
  {
    risk = 100.0 *. float_of_int !risks /. fn;
    utilization = 100.0 *. !util /. fn;
    blocks = !blocks /. fn;
    relerr = !err /. fn;
    stages = !stages /. fn;
  }

let pr_header name =
  Fmt.pr "@.=== Ablation: %s ===@." name

let pr_row label a =
  Fmt.pr "%-34s | stages %5.2f  risk %5.1f%%  util %5.1f%%  blocks %6.1f  relerr %5.3f@."
    label a.stages a.risk a.utilization a.blocks a.relerr

(* ------------------------------------------------------------------ *)
(* 1. Time-control strategies (Section 3.3)                            *)

let strategies ?(trials = 100) () =
  pr_header "time-control strategies (selection, quota 10 s)";
  let wl = Paper_setup.selection ~output:1_000 ~seed:201 () in
  let base strategy =
    { Config.default with Config.strategy; stopping = observe_stopping; trace = false }
  in
  List.iter
    (fun (label, strategy) ->
      pr_row label (aggregate ~wl ~quota:10.0 ~config:(base strategy) ~trials))
    [
      ("one-at-a-time (d_beta=1.645)", Strategy.one_at_a_time ~d_beta:1.645 ());
      ("single-interval (d_alpha=1.645)", Strategy.single_interval ~d_alpha:1.645 ());
      ("heuristic (split 0.5)", Strategy.heuristic ~split:0.5);
      ("heuristic (split 0.9)", Strategy.heuristic ~split:0.9);
    ];
  Fmt.pr
    "expected: statistical strategies control risk; the heuristic pays \
     either risk (large split) or stages/overhead (small split)@."

(* ------------------------------------------------------------------ *)
(* 2. Adaptive vs fixed-form cost formulas (Section 4)                 *)

let adaptive ?(trials = 100) () =
  pr_header "adaptive vs fixed cost formulas (selection, quota 10 s)";
  let wl = Paper_setup.selection ~output:1_000 ~seed:202 () in
  let config ~adaptive ~scale =
    {
      Config.default with
      Config.strategy = Strategy.one_at_a_time ~d_beta:1.645 ();
      stopping = observe_stopping;
      trace = false;
      adaptive_cost = adaptive;
      initial_cost_scale = scale;
    }
  in
  List.iter
    (fun (label, adaptive, scale) ->
      pr_row label (aggregate ~wl ~quota:10.0 ~config:(config ~adaptive ~scale) ~trials))
    [
      ("adaptive, initials 1x", true, 1.0);
      ("adaptive, initials 3x too high", true, 3.0);
      ("adaptive, initials 3x too low", true, 0.33);
      ("fixed, initials 1x", false, 1.0);
      ("fixed, initials 3x too high", false, 3.0);
      ("fixed, initials 3x too low", false, 0.33);
    ];
  Fmt.pr
    "expected: with too-low initials the very first stage overspends before \
     any adaptation is possible (the reason the designer constants are \
     deliberately pessimistic); with too-high initials, fixed formulas pay \
     many stages of overhead while the adaptive ones recover after one@."

(* ------------------------------------------------------------------ *)
(* 3. Cluster vs simple random sampling (Section 2)                    *)

let sampling ?(trials = 100) () =
  pr_header "cluster vs simple-random sampling (selection, quota 10 s)";
  let wl = Paper_setup.selection ~output:1_000 ~seed:203 () in
  let config plan =
    {
      Config.default with
      Config.strategy = Strategy.one_at_a_time ~d_beta:1.645 ();
      stopping = observe_stopping;
      trace = false;
      plan;
    }
  in
  List.iter
    (fun (label, unit_kind) ->
      pr_row label
        (aggregate ~wl ~quota:10.0
           ~config:(config { Plan.unit_kind; fulfillment = Plan.Full })
           ~trials))
    [ ("cluster (disk blocks)", Plan.Cluster); ("simple random (tuples)", Plan.Simple_random) ];
  Fmt.pr
    "expected: per unit of time, cluster sampling evaluates ~blocking \
     factor times more tuples, so its estimates are tighter (the paper's \
     reason for the cluster plan)@."

(* ------------------------------------------------------------------ *)
(* 4. Full vs partial fulfillment (Section 4)                          *)

let fulfillment ?(trials = 100) () =
  pr_header "full vs partial fulfillment (join, quota 2.5 s)";
  let wl = Paper_setup.join ~seed:204 () in
  let config fulfillment =
    {
      Config.default with
      Config.strategy = Strategy.one_at_a_time ~d_beta:1.645 ();
      stopping = observe_stopping;
      trace = false;
      plan = { Plan.unit_kind = Plan.Cluster; fulfillment };
      initial_selectivities =
        { Config.no_initial_overrides with Config.join = Some 0.01 };
    }
  in
  List.iter
    (fun (label, f) ->
      pr_row label (aggregate ~wl ~quota:2.5 ~config:(config f) ~trials))
    [ ("full fulfillment", Plan.Full); ("partial fulfillment", Plan.Partial) ];
  Fmt.pr
    "expected: full fulfillment evaluates the complete cross product of \
     the drawn samples (more points per block, lower error); partial \
     stages are cheaper and can use quota tails the full plan cannot@."

(* ------------------------------------------------------------------ *)
(* 5. Variance formula: SRS approximation vs reality (Section 3.3)     *)

let variance ?(trials = 150) () =
  pr_header
    "variance formula: SRS approximation vs exact cluster (selection)";
  (* For random and clustered block placements, compare the average
     reported variance of the estimator with the empirical variance of
     the estimates across trials, under both formulas. Ratio << 1 means
     the reported variance is optimistic -> CIs too narrow and the
     sel+ risk margins too small. The exact cluster formula pays the
     sorting cost the paper refused (compare the blocks column). *)
  let quota = 3.0 in
  let run placement variance_estimator =
    let rng = Taqp_rng.Prng.create 205 in
    let file = Generator.relation ~placement ~rng () in
    let catalog = Catalog.of_list [ ("r", file) ] in
    let query =
      Ra.Select
        ( Predicate.Cmp
            (Predicate.Lt, Predicate.Attr "sel", Predicate.Const (Taqp_data.Value.Int 1000)),
          Ra.relation "r" )
    in
    let estimates = Summary.create ()
    and reported = Summary.create ()
    and blocks = Summary.create () in
    for seed = 1 to trials do
      let config =
        {
          Config.default with
          Config.strategy = Strategy.one_at_a_time ~d_beta:1.645 ();
          stopping = observe_stopping;
          trace = false;
          variance_estimator;
        }
      in
      let r = Taqp.count_within ~config ~seed catalog ~quota query in
      Summary.add estimates r.Report.estimate;
      Summary.add reported r.Report.variance;
      Summary.add blocks (float_of_int r.Report.useful_blocks)
    done;
    (Summary.variance estimates, Summary.mean reported, Summary.mean blocks)
  in
  List.iter
    (fun (label, placement, ve) ->
      let empirical, reported, blocks = run placement ve in
      Fmt.pr
        "%-34s | empirical %10.0f  reported %10.0f  ratio %5.2f  blocks %5.1f@."
        label empirical reported
        (if empirical > 0.0 then reported /. empirical else nan)
        blocks)
    [
      ("random, SRS approx (paper)", `Random, Config.Srs_approximation);
      ("clustered, SRS approx (paper)", `Clustered, Config.Srs_approximation);
      ("clustered, exact cluster", `Clustered, Config.Cluster_exact);
    ];
  Fmt.pr
    "expected: the approximation is honest under random placement and \
     badly optimistic under clustered placement; the exact cluster \
     formula restores honest variances (ratio ~1) at the cost of extra \
     per-stage work — the Section 3.3 trade-off, quantified@."

(* ------------------------------------------------------------------ *)
(* 6. Estimator accuracy vs time quota ([HoOT 88]-style series)        *)

let accuracy ?(trials = 60) () =
  pr_header "estimate accuracy and CI coverage vs quota";
  let cases =
    [
      ("selection 1000", Paper_setup.selection ~output:1_000 ~seed:206 (), None);
      ("join 70000", Paper_setup.join ~seed:207 (), Some 0.01);
      ("intersection 10000", Paper_setup.intersection ~seed:208 (), None);
      ("projection 100", Paper_setup.projection ~seed:209 (), None);
    ]
  in
  Fmt.pr "%-20s %8s %10s %10s %10s@." "workload" "quota" "relerr" "coverage%" "blocks";
  List.iter
    (fun (label, wl, init_join) ->
      List.iter
        (fun quota ->
          let err = ref 0.0 and covered = ref 0 and blocks = ref 0.0 in
          for seed = 1 to trials do
            let config =
              {
                Config.default with
                Config.strategy = Strategy.one_at_a_time ~d_beta:1.645 ();
                stopping = observe_stopping;
                trace = false;
                initial_selectivities =
                  { Config.no_initial_overrides with Config.join = init_join };
              }
            in
            let r =
              Taqp.count_within ~config ~seed wl.Paper_setup.catalog ~quota
                wl.Paper_setup.query
            in
            err := !err +. Taqp.estimate_error ~report:r ~exact:wl.Paper_setup.exact;
            if
              Taqp_stats.Confidence.contains r.Report.confidence
                (float_of_int wl.Paper_setup.exact)
            then incr covered;
            blocks := !blocks +. float_of_int r.Report.useful_blocks
          done;
          let fn = float_of_int trials in
          Fmt.pr "%-20s %8g %10.3f %10.1f %10.1f@." label quota (!err /. fn)
            (100.0 *. float_of_int !covered /. fn)
            (!blocks /. fn))
        [ 2.5; 5.0; 10.0; 20.0; 40.0 ])
    cases;
  Fmt.pr
    "expected: error shrinks roughly with 1/sqrt(time); nominal 95%% \
     coverage under random placement (projection CIs are approximate)@."

(* ------------------------------------------------------------------ *)
(* 6b. Run-time vs prestored selectivities (Figure 3.2, row 1)         *)

let prestored ?(trials = 100) () =
  pr_header "run-time vs prestored selectivities (join, quota 2.5 s)";
  let wl = Paper_setup.join ~seed:211 () in
  let oracle e = Taqp_relational.Eval.operator_selectivity wl.Paper_setup.catalog e in
  (* No manual initial-selectivity hint here: the point of prestored
     selectivities is that nobody has to supply one. *)
  let base =
    {
      Config.default with
      Config.strategy = Strategy.one_at_a_time ~d_beta:1.645 ();
      stopping = observe_stopping;
      trace = false;
    }
  in
  List.iter
    (fun (label, config) ->
      pr_row label (aggregate ~wl ~quota:2.5 ~config ~trials))
    [
      ("run-time, max-selectivity start", base);
      ( "run-time, hinted start (paper)",
        {
          base with
          Config.initial_selectivities =
            { Config.no_initial_overrides with Config.join = Some 0.01 };
        } );
      ("prestored (oracle selectivities)", { base with Config.selectivity_oracle = Some oracle });
    ];
  Fmt.pr
    "expected: the max-selectivity start wastes the quota learning; the \
     hint and the oracle both size stages well. Note the oracle's HIGHER \
     risk: an exact selectivity has zero variance, so the d_beta margin \
     vanishes and only cost-model noise is left unprotected — prestored \
     selectivities are not a free lunch even before their maintenance \
     cost (the paper's reason for rejecting them)@."

(* ------------------------------------------------------------------ *)
(* 6c. Error-constrained evaluation: time to reach a target accuracy   *)

let time_to_accuracy ?(trials = 60) () =
  pr_header "error-constrained evaluation: time to a +/-10% interval";
  let cases =
    [
      ("selection 1000", Paper_setup.selection ~output:1_000 ~seed:212 (), None);
      ("join 70000", Paper_setup.join ~seed:213 (), Some 0.01);
      ("intersection 10000", Paper_setup.intersection ~seed:214 (), None);
    ]
  in
  Fmt.pr "%-20s %12s %10s %12s@." "workload" "time (s)" "stages" "true err";
  List.iter
    (fun (label, wl, init_join) ->
      let time = Summary.create ()
      and stages = Summary.create ()
      and err = Summary.create () in
      for seed = 1 to trials do
        let config =
          {
            Config.default with
            (* geometric stages: take ~3% of the remaining budget
               each time, check the interval, continue — the natural
               driver for error-constrained evaluation *)
            Config.strategy = Strategy.heuristic ~split:0.03;
            stopping =
              Stopping.All
                [
                  Stopping.Error_bound { relative = 0.10; level = 0.95 };
                  Stopping.Soft_deadline { grace = 1e9 };
                ];
            trace = false;
            initial_selectivities =
              { Config.no_initial_overrides with Config.join = init_join };
          }
        in
        (* A generous deadline backstop; the error bound should fire
           long before. *)
        let r =
          Taqp.count_within ~config ~seed wl.Paper_setup.catalog ~quota:600.0
            wl.Paper_setup.query
        in
        Summary.add time r.Report.elapsed;
        Summary.add stages (float_of_int r.Report.stages_completed);
        Summary.add err (Taqp.estimate_error ~report:r ~exact:wl.Paper_setup.exact)
      done;
      Fmt.pr "%-20s %12.1f %10.1f %12.3f@." label (Summary.mean time)
        (Summary.mean stages) (Summary.mean err))
    cases;
  Fmt.pr
    "expected: selection and join reach the target in tens of seconds (the \
     join's evaluated points grow with the product of its samples); the \
     intersection needs an order of magnitude longer — its one-in-10^4 \
     point selectivity is the worst case for interval width. The dual of \
     the time-constrained problem, on the same machinery@."

(* ------------------------------------------------------------------ *)
(* 6d. Prestored selectivities under updates (the maintenance argument)*)

let stale_oracle ?(trials = 60) () =
  pr_header "prestored selectivities after the database changes";
  (* Compute the oracle on yesterday's relation (selectivity 0.05),
     then run against today's (selectivity 0.5). Run-time estimation
     adapts by construction; the stale oracle keeps budgeting for 10x
     fewer output pages. This is the paper's argument for run-time
     estimation: "an extra effort is needed to maintain the set of
     stored selectivities when there are changes to the database". *)
  let today = Paper_setup.selection ~output:5_000 ~seed:215 () in
  (* The catalog entry was computed when this formula selected 5% of the
     relation; after updates it selects 50%. *)
  let stale e =
    match e with
    | Taqp_relational.Ra.Select (_, _) -> 0.05
    | _ -> Taqp_relational.Eval.operator_selectivity today.Paper_setup.catalog e
  in
  let base =
    {
      Config.default with
      Config.strategy = Strategy.one_at_a_time ~d_beta:1.645 ();
      stopping = observe_stopping;
      trace = false;
    }
  in
  List.iter
    (fun (label, config) ->
      pr_row label (aggregate ~wl:today ~quota:10.0 ~config ~trials))
    [
      ("run-time estimation", base);
      ("stale oracle (10x off)", { base with Config.selectivity_oracle = Some stale });
    ];
  Fmt.pr
    "expected: the stale oracle under-budgets output pages, so its stages \
     overrun — run-time estimation cannot go stale, which is why the paper \
     chose it for general database use@."

(* ------------------------------------------------------------------ *)
(* 7. Projection estimators (Goodman [Good 49] vs revisions)           *)

let projection_estimators ?(trials = 60) () =
  pr_header "projection (distinct-count) estimators";
  let uniform = Paper_setup.projection ~seed:210 () in
  let skewed = Paper_setup.projection_skewed ~seed:210 () in
  let config estimator =
    {
      Config.default with
      Config.strategy = Strategy.one_at_a_time ~d_beta:1.645 ();
      stopping = observe_stopping;
      trace = false;
      projection_estimator = estimator;
    }
  in
  Fmt.pr "%-22s %-22s %8s %10s@." "estimator" "groups" "quota" "relerr";
  List.iter
    (fun (wl, shape) ->
      List.iter
        (fun (label, estimator) ->
          List.iter
            (fun quota ->
              let err = ref 0.0 in
              for seed = 1 to trials do
                let r =
                  Taqp.count_within ~config:(config estimator) ~seed
                    wl.Paper_setup.catalog ~quota wl.Paper_setup.query
                in
                err :=
                  !err +. Taqp.estimate_error ~report:r ~exact:wl.Paper_setup.exact
              done;
              Fmt.pr "%-22s %-22s %8g %10.3f@." label shape quota
                (!err /. float_of_int trials))
            [ 2.5; 10.0; 40.0 ])
        [
          ("chao (default)", Config.Chao);
          ("goodman unbiased", Config.Goodman_unbiased);
          ("goodman first-order", Config.Goodman_first_order);
          ("naive scale-up", Config.Scale_up);
        ])
    [ (uniform, "100 uniform"); (skewed, "zipf(1.2)") ];
  Fmt.pr
    "expected: the raw Goodman series is unstable at small sampling \
     fractions and its first-order truncation over-corrects; Chao's \
     revision stays near the truth on uniform groups and degrades \
     gracefully (biased low, as all lower-bound estimators) under Zipf \
     skew, where rare groups hide from any sample@."

(* ------------------------------------------------------------------ *)
(* 8. Would an index save exact evaluation? (Section 4's assumption)   *)

let index_costs () =
  pr_header "exact evaluation with an index vs the 10 s quota";
  (* The paper assumes "no index files are used" to simplify its
     formulas. Here we price the alternative: how long exact answers
     take with a B+-tree, next to what the sampler delivers in 10 s. *)
  let wl = Paper_setup.selection ~output:1_000 ~seed:216 () in
  let file = Catalog.find wl.Paper_setup.catalog "r" in
  let index = Taqp_relational.Btree.build ~attr:"sel" file in
  let cost f =
    let clock = Taqp_storage.Clock.create_virtual () in
    let device =
      Taqp_storage.Device.create
        ~params:(Taqp_storage.Cost_params.no_jitter Taqp_storage.Cost_params.default)
        clock
    in
    f device;
    Taqp_storage.Clock.now clock
  in
  let scan_cost =
    cost (fun device ->
        ignore (Taqp_relational.Eval.count ~device wl.Paper_setup.catalog wl.Paper_setup.query))
  in
  let indexed_cost =
    cost (fun device ->
        ignore
          (Taqp_relational.Btree.select ~device index file
             ~hi:(Taqp_data.Value.Int 999) ()))
  in
  let join = Paper_setup.join ~seed:217 () in
  let join_scan_cost =
    cost (fun device ->
        ignore (Taqp_relational.Eval.count ~device join.Paper_setup.catalog join.Paper_setup.query))
  in
  let r2 = Catalog.find join.Paper_setup.catalog "r2" in
  let r2_index = Taqp_relational.Btree.build ~attr:"key" r2 in
  let join_inl_cost =
    cost (fun device ->
        (* index nested loop: scan r1, probe r2's index per tuple *)
        let r1 = Catalog.find join.Paper_setup.catalog "r1" in
        let scanned = Taqp_relational.Eval.scan ~device r1 in
        let pos = Taqp_data.Schema.find (Taqp_storage.Heap_file.schema r1) "key" in
        Array.iter
          (fun t ->
            ignore
              (Taqp_relational.Btree.lookup ~device r2_index
                 (Taqp_data.Tuple.get t pos)))
          scanned)
  in
  Fmt.pr "selection (sel < 1000): full scan %6.1f s | B+-tree %6.1f s@."
    scan_cost indexed_cost;
  Fmt.pr "join (70k pairs):       sort-merge %5.1f s | index nested loop %6.1f s@."
    join_scan_cost join_inl_cost;
  Fmt.pr
    "expected: the index cuts the exact selection ~4x (its 1,000 matches \
     are scattered across ~1,000 of the 2,000 blocks) yet still misses the \
     10 s quota; exact joins are hopeless either way. The paper's \
     simplifying \"no index files\" assumption costs little in exactly \
     the regime its method targets@."

let all ?(trials = 100) () =
  strategies ~trials ();
  adaptive ~trials ();
  sampling ~trials ();
  fulfillment ~trials ();
  variance ~trials:(trials + 50) ();
  accuracy ~trials:(Int.max 30 (trials / 2)) ();
  prestored ~trials ();
  time_to_accuracy ~trials:(Int.max 30 (trials / 2)) ();
  stale_oracle ~trials ();
  projection_estimators ~trials:(Int.max 30 (trials / 2)) ();
  index_costs ()
