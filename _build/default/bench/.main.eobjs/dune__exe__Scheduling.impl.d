bench/scheduling.ml: Array Float Fmt Lazy List Taqp_core Taqp_relational Taqp_rng Taqp_stats Taqp_storage Taqp_timecontrol Taqp_workload
