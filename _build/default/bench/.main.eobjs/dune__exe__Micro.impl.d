bench/micro.ml: Analyze Array Bechamel Benchmark Fmt Hashtbl Instance List Measure Staged Taqp_core Taqp_data Taqp_relational Taqp_rng Taqp_storage Taqp_timecontrol Taqp_workload Test Time Toolkit
