bench/ablations.ml: Array Fmt Int List Taqp_core Taqp_data Taqp_relational Taqp_rng Taqp_sampling Taqp_stats Taqp_storage Taqp_timecontrol Taqp_workload
