bench/main.mli:
