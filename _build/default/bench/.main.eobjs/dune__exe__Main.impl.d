bench/main.ml: Ablations Array Fmt List Micro Scheduling Sys Tables
