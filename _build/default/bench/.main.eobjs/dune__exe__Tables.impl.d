bench/tables.ml: Fmt List Taqp_core Taqp_timecontrol Taqp_workload
