(* The paper's second motivating claim (Section 1, citing [AbGM 88]):
   "By precisely fixing the execution times of database queries in a
   transaction, accurate estimates for transaction execution times
   become possible. This in turn plays an important role in minimizing
   the number of transactions that miss their deadlines."

   This bench simulates that setting: a FIFO server receives a stream
   of transactions, each embedding one aggregate query and a deadline.
   Policy EXACT evaluates every query completely; policy TAQP gives
   each query a quota equal to the slack its transaction has left.
   We sweep the arrival rate and report deadline-miss rates and answer
   quality. Everything runs on one shared virtual clock, so queueing
   delays are modeled faithfully. *)

module Taqp = Taqp_core.Taqp
module Report = Taqp_core.Report
module Config = Taqp_core.Config
module Stopping = Taqp_timecontrol.Stopping
module Clock = Taqp_storage.Clock
module Device = Taqp_storage.Device
module Cost_params = Taqp_storage.Cost_params
module Paper_setup = Taqp_workload.Paper_setup
module Prng = Taqp_rng.Prng

type job = {
  arrival : float;
  deadline : float;  (** absolute *)
  workload : Paper_setup.t;
  init_join : float option;
}

(* Three transaction classes over pre-built catalogs. The exact
   evaluation costs differ by an order of magnitude, which is what
   makes exact-mode completion times unpredictable. *)
let classes =
  lazy
    [
      (Paper_setup.selection ~output:2_000 ~seed:301 (), None, 8.0);
      (Paper_setup.join ~seed:302 (), Some 0.01, 10.0);
      (Paper_setup.intersection ~overlap:5_000 ~seed:303 (), None, 12.0);
    ]

let make_jobs ~rng ~n ~mean_gap =
  let t = ref 0.0 in
  List.init n (fun _ ->
      t := !t +. Prng.exponential rng (1.0 /. mean_gap);
      let workload, init_join, slack =
        Taqp_rng.Sample.choose rng (Array.of_list (Lazy.force classes))
      in
      { arrival = !t; deadline = !t +. slack; workload; init_join })

type policy = Exact | Taqp_policy

let run_policy ~policy ~jobs ~seed =
  let rng = Prng.create seed in
  let clock = Clock.create_virtual () in
  let device =
    Device.create ~params:Cost_params.default
      ~jitter_rng:(Prng.split rng) clock
  in
  let missed = ref 0 and err = Taqp_stats.Summary.create () in
  List.iter
    (fun job ->
      (* FIFO server: wait for the job to arrive if idle. *)
      Clock.sleep_until clock job.arrival;
      (match policy with
      | Exact ->
          let n =
            Taqp_relational.Eval.count ~device job.workload.Paper_setup.catalog
              job.workload.Paper_setup.query
          in
          ignore n;
          Taqp_stats.Summary.add err 0.0
      | Taqp_policy ->
          let quota = Float.max 0.2 (job.deadline -. Clock.now clock) in
          let config =
            {
              Config.default with
              Config.stopping = Stopping.Hard_deadline;
              trace = false;
              initial_selectivities =
                { Config.no_initial_overrides with Config.join = job.init_join };
            }
          in
          let r =
            Taqp.count_within_device ~config ~device ~rng:(Prng.split rng)
              job.workload.Paper_setup.catalog ~quota
              job.workload.Paper_setup.query
          in
          Taqp_stats.Summary.add err
            (Taqp.estimate_error ~report:r ~exact:job.workload.Paper_setup.exact));
      if Clock.now clock > job.deadline then incr missed)
    jobs;
  (!missed, Taqp_stats.Summary.mean err)

let run ?(jobs_per_run = 60) () =
  Fmt.pr "@.=== Scheduling: deadline misses, exact vs time-constrained ===@.";
  Fmt.pr
    "FIFO server, 3 transaction classes (select / join / intersect), \
     deadlines 8-12 s after arrival.@.";
  Fmt.pr "%10s | %18s | %26s@." "mean gap" "EXACT miss%" "TAQP miss%  (mean relerr)";
  List.iter
    (fun mean_gap ->
      let rng = Prng.create 777 in
      let jobs = make_jobs ~rng ~n:jobs_per_run ~mean_gap in
      let exact_missed, _ = run_policy ~policy:Exact ~jobs ~seed:1 in
      let taqp_missed, taqp_err = run_policy ~policy:Taqp_policy ~jobs ~seed:1 in
      let pct m = 100.0 *. float_of_int m /. float_of_int jobs_per_run in
      Fmt.pr "%9gs | %17.1f%% | %15.1f%%  (%.3f)@." mean_gap (pct exact_missed)
        (pct taqp_missed) taqp_err)
    [ 400.0; 120.0; 30.0; 10.0 ];
  Fmt.pr
    "expected: exact evaluation (minutes per query on this device) misses \
     almost everything even when idle; the time-constrained evaluator \
     misses (nearly) nothing at any load because a query can never run \
     past its quota — at the price of approximate answers@."
