(* BENCH_serve.json: the socket front door under open-loop load.

   Arrival-process x arrival-rate x admission on/off cells, each a
   drain-gated [Taqp_net.Server] on an ephemeral loopback port fed by
   the [Taqp_net.Load] harness — real sockets, real framing, virtual
   execution. The schedule is drawn before the first byte moves
   (open-loop), so a hot cell cannot slow its own offered load down:
   overload lands as priced rejections and deadline misses, which is
   exactly what the bench records.

   The headline assertion is the tentpole claim: at the hottest rate,
   admission control strictly lowers the deadline-miss rate versus an
   unmanaged queue at equal offered load, without collapsing goodput
   (in-deadline completions per virtual second). [write] exits
   non-zero when the claim fails — CI runs it as a check, not a
   chart. *)

module Config = Taqp_core.Config
module Stopping = Taqp_timecontrol.Stopping
module Generator = Taqp_workload.Generator
module Paper_setup = Taqp_workload.Paper_setup
module Arrivals = Taqp_workload.Arrivals
module Catalog = Taqp_storage.Catalog
module Prng = Taqp_rng.Prng
module Json = Taqp_obs.Json
module Ra = Taqp_relational.Ra
module Job = Taqp_sched.Job
module Admission = Taqp_sched.Admission
module Engine = Taqp_sched.Engine
module Scheduler = Taqp_sched.Scheduler
module Sched_journal = Taqp_sched.Sched_journal
module Server = Taqp_net.Server
module Load = Taqp_net.Load

let spec = { Generator.n_tuples = 2_000; tuple_bytes = 200; block_bytes = 1024 }

(* One merged catalog for the whole server: each class keeps its own
   generated relations under distinct names, and the wire queries
   restore the original column qualifiers with aliases ("jr1 as r1"),
   so the query text run here is semantically the one the scheduling
   bench runs in-process. *)
let classes =
  lazy
    (let sel = Paper_setup.selection ~spec ~output:200 ~seed:301 () in
     let join = Paper_setup.join ~spec ~seed:302 () in
     let inter = Paper_setup.intersection ~spec ~overlap:500 ~seed:303 () in
     let catalog = Catalog.create () in
     Catalog.add catalog "sr" (Catalog.find sel.Paper_setup.catalog "r");
     Catalog.add catalog "jr1" (Catalog.find join.Paper_setup.catalog "r1");
     Catalog.add catalog "jr2" (Catalog.find join.Paper_setup.catalog "r2");
     Catalog.add catalog "ir1" (Catalog.find inter.Paper_setup.catalog "r1");
     Catalog.add catalog "ir2" (Catalog.find inter.Paper_setup.catalog "r2");
     let module P = Taqp_relational.Predicate in
     let lt a v = P.Cmp (P.Lt, P.Attr a, P.Const (Taqp_data.Value.Int v)) in
     let eq a b = P.Cmp (P.Eq, P.Attr a, P.Attr b) in
     let queries =
       [|
         (* name, query, slack, priority, min_rhw *)
         ( "select",
           Ra.Select (lt "sel" 200, Ra.relation ~alias:"r" "sr"),
           4.0,
           1,
           None );
         ( "join",
           Ra.Join
             ( eq "r1.key" "r2.key",
               Ra.relation ~alias:"r1" "jr1",
               Ra.relation ~alias:"r2" "jr2" ),
           10.0,
           2,
           Some 0.02 );
         ( "intersect",
           Ra.Intersect
             (Ra.relation ~alias:"r1" "ir1", Ra.relation ~alias:"r2" "ir2"),
           25.0,
           1,
           None );
       |]
     in
     (catalog, queries))

let config =
  {
    Config.default with
    Config.stopping = Stopping.Hard_deadline;
    initial_selectivities =
      { Config.no_initial_overrides with Config.join = Some 0.01 };
  }

(* The class of each schedule slot is drawn once, from its own seed:
   every cell at every rate sees the same class sequence, so cells
   differ only in arrival instants and admission policy. *)
let class_sequence ~n ~seed =
  let _, queries = Lazy.force classes in
  let rng = Prng.create seed in
  Array.init n (fun _ -> Taqp_rng.Sample.choose rng queries)

let job_line classes_drawn ~index ~offset =
  let name, query, slack, priority, min_rhw = classes_drawn.(index) in
  let opts =
    Printf.sprintf "priority=%d,seed=%d,label=%s-%d" priority (1000 + index)
      name index
    ^ match min_rhw with None -> "" | Some r -> Printf.sprintf ",min_rhw=%g" r
  in
  Printf.sprintf "%.17g | %.17g | %s | %s" offset (offset +. slack)
    (Ra.to_string query) opts

type cell = {
  process : Arrivals.process;
  mean_gap : float;
  admission : Admission.t option;
  outcome : Load.outcome;
  stats : Server.stats;
}

let run_cell ~process ~mean_gap ~admission ~n ~seed =
  let catalog, _ = Lazy.force classes in
  let classes_drawn = class_sequence ~n ~seed in
  let server =
    Server.create ?admission ~gate:`Drain
      ~quota_capacity:(float_of_int n) (* the bench prices admission,
                                          not the per-client quota *)
      ~catalog ~config ~port:0 ()
  in
  let port = Server.port server in
  let domain = Domain.spawn (fun () -> Server.run server) in
  let outcome =
    Load.run ~port ~process ~rate:(1.0 /. mean_gap) ~n ~seed ~clients:4
      ~make_line:(job_line classes_drawn) ()
  in
  let stats = Domain.join domain in
  { process; mean_gap; admission; outcome; stats }

(* ------------------------------------------------------------------ *)
(* Per-cell accounting                                                  *)

let percentiles_of_latencies (c : cell) =
  (* arrival instants come from the QUEUED replies; latency is the
     terminal instant minus arrival, for admitted jobs that ran *)
  let arrival = Hashtbl.create 64 in
  List.iter
    (fun (s : Load.submission) ->
      match s.Load.disposition with
      | Load.Queued { job_id; arrival = a; _ } -> Hashtbl.replace arrival job_id a
      | Load.Door_rejected _ -> ())
    c.outcome.Load.submissions;
  let lats =
    List.filter_map
      (fun (d : Sched_journal.done_record) ->
        if d.Sched_journal.d_admitted then
          Option.map
            (fun a -> d.Sched_journal.d_finished_at -. a)
            (Hashtbl.find_opt arrival d.Sched_journal.d_id)
        else None)
      c.outcome.Load.finished
    |> List.sort compare |> Array.of_list
  in
  ( Engine.percentile lats 0.50,
    Engine.percentile lats 0.99,
    Engine.percentile lats 0.999 )

let goodput (c : cell) =
  let s = c.outcome.Load.summary in
  let in_deadline = s.Engine.completed - (s.Engine.missed - s.Engine.expired) in
  (* completed counts admitted jobs that ran; missed covers late
     completions plus expired — in-deadline completions are what
     goodput pays for *)
  let in_deadline = Int.max 0 in_deadline in
  if s.Engine.makespan <= 0.0 then 0.0
  else float_of_int in_deadline /. s.Engine.makespan

let cell_json (c : cell) =
  let s = c.outcome.Load.summary in
  let door_rejected =
    List.length
      (List.filter
         (fun (sub : Load.submission) ->
           match sub.Load.disposition with
           | Load.Door_rejected _ -> true
           | Load.Queued _ -> false)
         c.outcome.Load.submissions)
  in
  let admission_rejected = List.length c.outcome.Load.refused in
  let offered = List.length c.outcome.Load.submissions in
  let retry_afters =
    List.map (fun (_, _, r) -> r) c.outcome.Load.refused
    @ List.filter_map
        (fun (sub : Load.submission) ->
          match sub.Load.disposition with
          | Load.Door_rejected { retry_after; _ } -> Some retry_after
          | Load.Queued _ -> None)
        c.outcome.Load.submissions
  in
  let mean_retry =
    match List.filter (fun r -> r < infinity) retry_afters with
    | [] -> 0.0
    | rs -> List.fold_left ( +. ) 0.0 rs /. float_of_int (List.length rs)
  in
  let p50, p99, p999 = percentiles_of_latencies c in
  Json.Obj
    [
      ("process", Json.Str (Arrivals.name c.process));
      ("mean_gap", Json.Num c.mean_gap);
      ("admission", Json.Bool (c.admission <> None));
      ("offered", Json.Num (float_of_int offered));
      ("door_rejected", Json.Num (float_of_int door_rejected));
      ("admission_rejected", Json.Num (float_of_int admission_rejected));
      ( "rejection_rate",
        Json.Num
          (if offered = 0 then 0.0
           else
             float_of_int (door_rejected + admission_rejected)
             /. float_of_int offered) );
      ("miss_rate", Json.Num s.Engine.miss_rate);
      ("goodput", Json.Num (goodput c));
      ( "qps_completed",
        Json.Num
          (if s.Engine.makespan <= 0.0 then 0.0
           else float_of_int s.Engine.completed /. s.Engine.makespan) );
      ("latency_p50", Json.Num p50);
      ("latency_p99", Json.Num p99);
      ("latency_p999", Json.Num p999);
      ("mean_retry_after", Json.Num mean_retry);
      ("max_live", Json.Num (float_of_int c.stats.Server.max_live));
      ("door_rejects_server", Json.Num (float_of_int c.stats.Server.door_rejects));
      ("summary", Scheduler.summary_json s);
    ]

(* ------------------------------------------------------------------ *)

let processes = [ Arrivals.Poisson; Arrivals.Pareto { alpha = 1.5 } ]
let mean_gaps = [ 20.0; 6.0; 1.5 ]
let max_queue = 8

let admission_on = Admission.make ~max_queue ~headroom:1.2 ()

let write ?(path = "BENCH_serve.json") ?(jobs_per_cell = 40) () =
  let seed = 777 in
  let cells =
    List.concat_map
      (fun process ->
        List.concat_map
          (fun mean_gap ->
            List.map
              (fun admission ->
                let c =
                  run_cell ~process ~mean_gap ~admission ~n:jobs_per_cell ~seed
                in
                (* the admission queue bound is a hard invariant, not a
                   statistic *)
                (match admission with
                | Some a ->
                    (match a.Admission.max_queue with
                    | Some q when c.stats.Server.max_live > q ->
                        Fmt.epr "FAIL: max_live %d exceeded max_queue %d@."
                          c.stats.Server.max_live q;
                        exit 1
                    | _ -> ())
                | None -> ());
                c)
              [ None; Some admission_on ])
          mean_gaps)
      processes
  in
  (* Headline: hottest rate, admission on vs off, per process. *)
  let hottest = List.fold_left Float.min infinity mean_gaps in
  let headline =
    List.map
      (fun process ->
        let find adm =
          List.find
            (fun c ->
              c.process = process && c.mean_gap = hottest
              && (c.admission <> None) = adm)
            cells
        in
        let on = find true and off = find false in
        let miss_on = on.outcome.Load.summary.Engine.miss_rate in
        let miss_off = off.outcome.Load.summary.Engine.miss_rate in
        let good_on = goodput on and good_off = goodput off in
        let ok = miss_on < miss_off && good_on >= 0.5 *. good_off in
        Fmt.pr
          "  %-12s gap %.1fs: miss %.1f%% -> %.1f%%, goodput %.3f -> %.3f  %s@."
          (Arrivals.name process) hottest (100.0 *. miss_off)
          (100.0 *. miss_on) good_off good_on
          (if ok then "OK" else "FAIL");
        ( process,
          Json.Obj
            [
              ("process", Json.Str (Arrivals.name process));
              ("mean_gap", Json.Num hottest);
              ("miss_rate_admission_off", Json.Num miss_off);
              ("miss_rate_admission_on", Json.Num miss_on);
              ("goodput_admission_off", Json.Num good_off);
              ("goodput_admission_on", Json.Num good_on);
              ("ok", Json.Bool ok);
            ],
          ok ))
      processes
  in
  let all_ok = List.for_all (fun (_, _, ok) -> ok) headline in
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "taqp-bench-serve/1");
        ("jobs_per_cell", Json.Num (float_of_int jobs_per_cell));
        ("seed", Json.Num (float_of_int seed));
        ("clients", Json.Num 4.0);
        ( "processes",
          Json.List
            (List.map (fun p -> Json.Str (Arrivals.name p)) processes) );
        ("mean_gaps", Json.List (List.map (fun g -> Json.Num g) mean_gaps));
        ("max_queue", Json.Num (float_of_int max_queue));
        ("headroom", Json.Num admission_on.Admission.headroom);
        ("cells", Json.List (List.map cell_json cells));
        ( "headline",
          Json.Obj
            (("ok", Json.Bool all_ok)
            :: List.map
                 (fun (p, j, _) -> (Arrivals.name p, j))
                 headline) );
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "@.wrote %s (%d cells: %d processes x %d gaps x admission on/off)@."
    path (List.length cells) (List.length processes) (List.length mean_gaps);
  if not all_ok then begin
    Fmt.epr
      "FAIL: admission control did not strictly beat the unmanaged queue at \
       the hottest rate@.";
    exit 1
  end
