(* BENCH_cache.json: the shared cross-query cache sweep.

   The claim under test is the tentpole's: at the hottest arrival rate,
   with class popularity skewed onto a hot relation, a scheduler
   sharing one block & sample cache across its jobs misses strictly
   fewer deadlines and queues jobs for strictly less time than the
   same workload with the cache off — because hot relations serve
   concurrent queries at probe price instead of disk price.

   Two deliberate deviations from the --sched sweep:

   - jobs stop on [Hard_deadline OR Error_bound]: under a pure hard
     deadline every job burns its whole quota no matter how fast its
     IO is, so a cache could never reduce misses — the error bound is
     what lets cache-hit speed reach the precision target sooner, free
     the device, and drain the queue;
   - class popularity is Zipfian ([make_jobs ~skew]) so the workload
     concentrates on the "select" class's relation — the hot-relation
     regime a shared cache exists for. *)

module Config = Taqp_core.Config
module Stopping = Taqp_timecontrol.Stopping
module Json = Taqp_obs.Json
module Job = Taqp_sched.Job
module Policy = Taqp_sched.Policy
module Admission = Taqp_sched.Admission
module Scheduler = Taqp_sched.Scheduler
module Cache = Taqp_cache.Cache

let seed = 777
let skew = 1.2
let mean_gap = 2.0
let n_jobs = 40

(* Budgets swept, in MB. 0 encodes cache-off; the working set of a
   bench relation is ~0.4 MB (400 one-KB blocks), so 1 MB exercises
   eviction while 8 MB holds every hot relation outright. *)
let budgets_mb = [ 0.0; 1.0; 8.0 ]

(* The same arrival stream for every cell, re-stopped on
   deadline-or-precision so virtual-time savings become throughput. *)
let jobs () =
  Scheduling.make_jobs ~skew ~n:n_jobs ~mean_gap ~seed ()
  |> List.map (fun (_, j) ->
         {
           j with
           Job.config =
             {
               j.Job.config with
               Config.stopping =
                 Stopping.All
                   [
                     Stopping.Hard_deadline;
                     Stopping.Error_bound { relative = 0.15; level = 0.90 };
                   ];
             };
         })

type cell = {
  c_budget_mb : float;
  c_result : Scheduler.result;
  c_stats : Cache.stats option;
  c_hit_ratio : float;
}

let run_cell budget_mb =
  let cache =
    if budget_mb <= 0.0 then None
    else Some (Cache.create ~budget_mb ~seed:0 ())
  in
  let result =
    Scheduler.run ~policy:Policy.Edf ~admission:Admission.default ?cache
      (jobs ())
  in
  {
    c_budget_mb = budget_mb;
    c_result = result;
    c_stats = Option.map Cache.stats cache;
    c_hit_ratio =
      (match cache with None -> 0.0 | Some c -> Cache.hit_ratio c);
  }

let cell_json ~device_reads c =
  Json.Obj
    [
      ("cache", Json.Bool (c.c_budget_mb > 0.0));
      ("budget_mb", Json.Num c.c_budget_mb);
      ("summary", Scheduler.summary_json c.c_result.Scheduler.summary);
      ("mean_rel_error", Json.Num (Scheduling.mean_rel_error c.c_result));
      ("device_reads", Json.Num (float_of_int device_reads));
      ( "cache_stats",
        match c.c_stats with
        | None -> Json.Null
        | Some s ->
            Json.Obj
              [
                ("hits", Json.Num (float_of_int s.Cache.hits));
                ("misses", Json.Num (float_of_int s.Cache.misses));
                ("evictions", Json.Num (float_of_int s.Cache.evictions));
                ("bytes", Json.Num (float_of_int s.Cache.bytes));
                ("hit_ratio", Json.Num c.c_hit_ratio);
              ] );
    ]

(* Cache-off has no Cache counters; its "misses" for the acceptance
   inequality are the device's sample reads, which on the cache-on
   side equal the cache's miss count. Both are per-cell totals of the
   same quantity: blocks actually fetched from the device. *)
let device_misses c =
  match c.c_stats with
  | Some s -> s.Cache.misses
  | None ->
      List.fold_left
        (fun acc (r : Scheduler.job_report) ->
          match r.Scheduler.outcome with
          | Scheduler.Completed rep ->
              acc + rep.Taqp_core.Report.blocks_read
          | _ -> acc)
        0 c.c_result.Scheduler.reports

let write ?(path = "BENCH_cache.json") () =
  let cells = List.map run_cell budgets_mb in
  let off = List.hd cells in
  let hottest = List.nth cells (List.length cells - 1) in
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "taqp-bench-cache/1");
        ("seed", Json.Num (float_of_int seed));
        ("skew", Json.Num skew);
        ("mean_gap", Json.Num mean_gap);
        ("jobs", Json.Num (float_of_int n_jobs));
        ("policy", Json.Str (Policy.name Policy.Edf));
        ("admission", Json.Bool true);
        ( "cells",
          Json.List
            (List.map
               (fun c -> cell_json ~device_reads:(device_misses c) c)
               cells) );
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  let s_off = off.c_result.Scheduler.summary in
  let s_hot = hottest.c_result.Scheduler.summary in
  Fmt.pr "@.wrote %s (%d cells, budgets MB:" path (List.length cells);
  List.iter (fun b -> Fmt.pr " %g" b) budgets_mb;
  Fmt.pr ")@.";
  List.iter
    (fun c ->
      Fmt.pr
        "  budget %5.1f MB: %2d missed  wait %6.3fs  device reads %6d  hit \
         ratio %.3f@."
        c.c_budget_mb c.c_result.Scheduler.summary.Scheduler.missed
        c.c_result.Scheduler.summary.Scheduler.mean_queue_wait
        (device_misses c) c.c_hit_ratio)
    cells;
  (* The acceptance inequalities the CI bench-cache job re-checks from
     the JSON: at the hottest rate, the warm cache must strictly win. *)
  let failures =
    List.concat
      [
        (if s_hot.Scheduler.missed < s_off.Scheduler.missed then []
         else
           [
             Fmt.str "missed deadlines not reduced (%d cached vs %d off)"
               s_hot.Scheduler.missed s_off.Scheduler.missed;
           ]);
        (if s_hot.Scheduler.mean_queue_wait < s_off.Scheduler.mean_queue_wait
         then []
         else
           [
             Fmt.str "mean queue wait not reduced (%.3fs cached vs %.3fs off)"
               s_hot.Scheduler.mean_queue_wait s_off.Scheduler.mean_queue_wait;
           ]);
        (if hottest.c_hit_ratio > 0.0 then []
         else [ "cache hit ratio is zero at the largest budget" ]);
        (if device_misses hottest < device_misses off then []
         else
           [
             Fmt.str "device reads not reduced (%d cached vs %d off)"
               (device_misses hottest) (device_misses off);
           ]);
      ]
  in
  if failures <> [] then begin
    List.iter (fun m -> Fmt.epr "BENCH_cache FAILED: %s@." m) failures;
    exit 1
  end;
  Fmt.pr
    "cache-on at %g MB: %d -> %d missed, wait %.3fs -> %.3fs, hit ratio \
     %.3f — acceptance inequalities hold@."
    hottest.c_budget_mb s_off.Scheduler.missed s_hot.Scheduler.missed
    s_off.Scheduler.mean_queue_wait s_hot.Scheduler.mean_queue_wait
    hottest.c_hit_ratio
