(* The paper's second motivating claim (Section 1, citing [AbGM 88]):
   "By precisely fixing the execution times of database queries in a
   transaction, accurate estimates for transaction execution times
   become possible. This in turn plays an important role in minimizing
   the number of transactions that miss their deadlines."

   Two faces of that setting, both on taqp_sched's shared-device
   scheduler:

   - [run]: the human-readable EXACT-vs-TAQP scenario. Policy EXACT
     evaluates every query completely on a FIFO device; policy TAQP is
     the scheduler in its seed-compatible configuration (FIFO, no
     admission, quota = transaction slack).

   - [write]: the policy x arrival-rate x admission sweep behind
     BENCH_sched.json — the machine-readable record that EDF plus
     admission control beats an unmanaged FIFO queue on deadline
     misses, for tracking across commits. *)

module Taqp = Taqp_core.Taqp
module Config = Taqp_core.Config
module Report = Taqp_core.Report
module Stopping = Taqp_timecontrol.Stopping
module Clock = Taqp_storage.Clock
module Device = Taqp_storage.Device
module Cost_params = Taqp_storage.Cost_params
module Generator = Taqp_workload.Generator
module Paper_setup = Taqp_workload.Paper_setup
module Prng = Taqp_rng.Prng
module Json = Taqp_obs.Json
module Job = Taqp_sched.Job
module Policy = Taqp_sched.Policy
module Admission = Taqp_sched.Admission
module Scheduler = Taqp_sched.Scheduler

let spec = { Generator.n_tuples = 2_000; tuple_bytes = 200; block_bytes = 1024 }

(* Three transaction classes over pre-built catalogs. The exact
   evaluation costs differ by an order of magnitude — which is what
   makes exact-mode completion times unpredictable — and the slacks
   are deliberately heterogeneous so deadline order differs from
   arrival order (the gap EDF exploits and FIFO cannot). *)
let classes =
  lazy
    [|
      (* name, workload, init join sel, slack, priority, min rel. hw *)
      ( "select",
        Paper_setup.selection ~spec ~output:200 ~seed:301 (),
        None,
        4.0,
        1,
        None );
      ( "join",
        Paper_setup.join ~spec ~seed:302 (),
        Some 0.01,
        10.0,
        2,
        Some 0.02 );
      ( "intersect",
        Paper_setup.intersection ~spec ~overlap:500 ~seed:303 (),
        None,
        25.0,
        1,
        None );
    |]

let job_config ~init_join ~trace =
  {
    Config.default with
    Config.stopping = Stopping.Hard_deadline;
    trace;
    initial_selectivities =
      { Config.no_initial_overrides with Config.join = init_join };
  }

(* Deterministic Poisson arrivals: the same [seed] and [mean_gap]
   always build the same job list, so every policy/admission cell of
   the sweep (and both policies of [run]) sees the identical stream.
   [trace] turns on per-stage report traces — the audit bench needs
   them for drift evidence; the sweep keeps them off.

   [skew] makes the class popularity Zipfian with that exponent instead
   of uniform: rank 0 ("select") dominates, which concentrates the
   workload on a hot relation — the regime the shared cache bench
   ([Cache_bench]) needs. Omitted, the draw path (one [Sample.choose]
   per job) is untouched, so existing sweeps are byte-identical. *)
let make_jobs ?(trace = false) ?skew ~n ~mean_gap ~seed () =
  let rng = Prng.create seed in
  let zipf =
    Option.map
      (fun s ->
        Taqp_rng.Zipf.create ~n:(Array.length (Lazy.force classes)) ~s)
      skew
  in
  let t = ref 0.0 in
  List.init n (fun i ->
      t := !t +. Prng.exponential rng (1.0 /. mean_gap);
      let name, wl, init_join, slack, priority, min_confidence =
        match zipf with
        | None -> Taqp_rng.Sample.choose rng (Lazy.force classes)
        | Some z -> (Lazy.force classes).(Taqp_rng.Zipf.draw z rng)
      in
      ( wl,
        Job.make ~label:(Fmt.str "%s-%d" name i) ~priority ?min_confidence
          ~config:(job_config ~init_join ~trace) ~seed:(1000 + i)
          ~exact:wl.Paper_setup.exact ~id:i ~catalog:wl.Paper_setup.catalog
          ~arrival:!t ~deadline:(!t +. slack) wl.Paper_setup.query ))

let mean_rel_error result =
  let errs =
    List.filter_map
      (fun r ->
        match (Scheduler.completed_report r, r.Scheduler.job.Job.exact) with
        | Some report, Some exact when report.Report.stages_completed > 0 ->
            Some (Taqp.estimate_error ~report ~exact)
        | _ -> None)
      result.Scheduler.reports
  in
  match errs with
  | [] -> Float.nan
  | es -> List.fold_left ( +. ) 0.0 es /. float_of_int (List.length es)

(* EXACT baseline: a FIFO device that evaluates every query completely,
   with no time control at all — each job simply misses whenever the
   backlog pushes its completion past its deadline. *)
let run_exact jobs =
  let clock = Clock.create_virtual () in
  let device =
    Device.create ~params:(Cost_params.no_jitter Cost_params.default) clock
  in
  let missed = ref 0 in
  List.iter
    (fun (wl, (job : Job.t)) ->
      Clock.sleep_until clock job.Job.arrival;
      ignore
        (Taqp_relational.Eval.count ~device wl.Paper_setup.catalog
           wl.Paper_setup.query);
      if Clock.now clock > job.Job.deadline then incr missed)
    jobs;
  !missed

let run ?(jobs_per_run = 60) () =
  Fmt.pr "@.=== Scheduling: deadline misses, exact vs time-constrained ===@.";
  Fmt.pr
    "FIFO server, 3 transaction classes (select / join / intersect), \
     deadlines 4-25 s after arrival.@.";
  Fmt.pr "%10s | %18s | %26s@." "mean gap" "EXACT miss%"
    "TAQP miss%  (mean relerr)";
  List.iter
    (fun mean_gap ->
      let jobs = make_jobs ~n:jobs_per_run ~mean_gap ~seed:777 () in
      let exact_missed = run_exact jobs in
      let result =
        Scheduler.run ~policy:Policy.Fifo (List.map snd jobs)
      in
      let pct m = 100.0 *. float_of_int m /. float_of_int jobs_per_run in
      Fmt.pr "%9gs | %17.1f%% | %15.1f%%  (%.3f)@." mean_gap (pct exact_missed)
        (pct result.Scheduler.summary.Scheduler.missed)
        (mean_rel_error result))
    [ 400.0; 120.0; 30.0; 10.0 ];
  Fmt.pr
    "expected: exact evaluation (minutes per query on this device) misses \
     almost everything even when idle; the time-constrained evaluator can \
     never run past a quota, so its misses are pure queueing — jobs whose \
     slack was already gone when FIFO got to them. The policy/admission \
     sweep (--sched, BENCH_sched.json) shows EDF plus admission control \
     recovering most of those@."

(* ------------------------------------------------------------------ *)
(* BENCH_sched.json: policy x arrival-rate x admission sweep. *)

let cell_json ~policy ~admission ~mean_gap (result : Scheduler.result) =
  Json.Obj
    [
      ("policy", Json.Str (Policy.name policy));
      ("admission", Json.Bool admission);
      ("mean_gap", Json.Num mean_gap);
      ("summary", Scheduler.summary_json result.Scheduler.summary);
      ("mean_rel_error", Json.Num (mean_rel_error result));
    ]

let write ?(path = "BENCH_sched.json") ?(jobs_per_cell = 40) () =
  let gaps = [ 30.0; 8.0; 2.0 ] in
  let cells =
    List.concat_map
      (fun mean_gap ->
        let jobs =
          List.map snd (make_jobs ~n:jobs_per_cell ~mean_gap ~seed:777 ())
        in
        List.concat_map
          (fun policy ->
            List.map
              (fun admission ->
                let result =
                  Scheduler.run ~policy
                    ?admission:
                      (if admission then Some Admission.default else None)
                    jobs
                in
                cell_json ~policy ~admission ~mean_gap result)
              [ false; true ])
          Policy.all)
      gaps
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "taqp-bench-sched/1");
        ("jobs_per_cell", Json.Num (float_of_int jobs_per_cell));
        ("seed", Json.Num 777.0);
        ("mean_gaps", Json.List (List.map (fun g -> Json.Num g) gaps));
        ("policies", Json.List (List.map (fun p -> Json.Str (Policy.name p)) Policy.all));
        ("cells", Json.List cells);
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "@.wrote %s (%d cells: %d policies x %d gaps x admission on/off)@."
    path (List.length cells) (List.length Policy.all) (List.length gaps)
