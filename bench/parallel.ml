(* Sharded parallel stage execution: the wall-clock payoff and the
   bit-identity contract, measured together.

   Two kinds of runs feed BENCH_parallel.json:

   - Timing runs drive Staged directly (fixed stage fraction, virtual
     clock, jitter-free device) over multi-join workloads big enough
     that the parallel compute regions — delta sorts, pairing merges,
     hash probes — dominate wall time. Each (query, domains) cell
     reports the best-of-[repeats] wall time plus the virtual device
     cost, and asserts the estimate and virtual cost are bit-identical
     to the 1-domain cell.

   - Identity runs drive the full engine (Executor.run: jittered
     device, tracer, budget ledger) at domains ∈ {1, 2, 4} and assert
     the complete observable surface — report fingerprint, trace event
     stream, ledger reconciliation — equals the 1-domain run's.

   The headline ≥ 2.5x speedup at 4 domains is asserted only when the
   host actually has ≥ 4 cores (Domain.recommended_domain_count); the
   JSON records the core count and whether the assertion was armed, so
   CI (which runs on 4-vCPU runners) can tell a pass from a skip. The
   identity assertions are unconditional — they are the point. *)

module Config = Taqp_core.Config
module Staged = Taqp_core.Staged
module Executor = Taqp_core.Executor
module Aggregate = Taqp_core.Aggregate
module Report = Taqp_core.Report
module Paper_setup = Taqp_workload.Paper_setup
module Generator = Taqp_workload.Generator
module Cost_model = Taqp_timecost.Cost_model
module Count_estimator = Taqp_estimators.Count_estimator
module Stopping = Taqp_timecontrol.Stopping
module Prng = Taqp_rng.Prng
module Clock = Taqp_storage.Clock
module Device = Taqp_storage.Device
module Cost_params = Taqp_storage.Cost_params
module Io_stats = Taqp_storage.Io_stats
module Sink = Taqp_obs.Sink
module Tracer = Taqp_obs.Tracer
module Ledger = Taqp_audit.Ledger
module Json = Taqp_obs.Json

let domains_swept = [ 1; 2; 4 ]
let speedup_target = 2.5
let repeats = 3

(* Multi-join timing workloads: sized so per-stage deltas and the
   quadratically growing pairing schedule give the pool real work. *)
let timing_spec = { Generator.n_tuples = 30_000; tuple_bytes = 200; block_bytes = 1024 }

let timing_workloads () =
  [
    ("join", Paper_setup.join ~spec:timing_spec ~seed:3 ());
    ( "three_way_join",
      Paper_setup.three_way_join
        ~spec:{ timing_spec with Generator.n_tuples = 9_000 }
        ~group_size:3 ~seed:5 () );
  ]

(* Identity workloads: moderate scale, full engine, every seam. *)
let identity_spec = { Generator.n_tuples = 2_000; tuple_bytes = 100; block_bytes = 1024 }

let identity_workloads () =
  [
    ("join", Paper_setup.join ~spec:identity_spec ~seed:7 (), 2.0);
    ( "three_way_join",
      Paper_setup.three_way_join
        ~spec:{ identity_spec with Generator.n_tuples = 600 }
        ~group_size:3 ~seed:7 (),
      2.5 );
    ( "sharded_skew",
      Paper_setup.sharded_selection ~spec:identity_spec ~shards:4 ~skew:3.0
        ~seed:7 (),
      1.5 );
  ]

type timed = {
  t_wall_ms : float;
  t_virtual : float;
  t_estimate : float;
  t_stages : int;
}

let staged_once ~domains ~physical ~stages ~f (wl : Paper_setup.t) =
  let config = { Config.default with Config.physical; domains } in
  let cost_model = Cost_model.create () in
  let staged =
    Staged.compile ~catalog:wl.Paper_setup.catalog ~config
      ~rng:(Prng.create 11) ~cost_model wl.Paper_setup.query
  in
  let clock = Clock.create_virtual () in
  let device =
    Device.create ~params:(Cost_params.no_jitter Cost_params.default) clock
  in
  let t0 = Unix.gettimeofday () in
  let stages_run = ref 0 in
  let estimate = ref 0.0 in
  for _ = 1 to stages do
    match Staged.run_stage staged ~device ~f with
    | Some r ->
        incr stages_run;
        estimate := r.Staged.estimate.Count_estimator.estimate
    | None -> ()
  done;
  {
    t_wall_ms = (Unix.gettimeofday () -. t0) *. 1e3;
    t_virtual = Clock.now clock;
    t_estimate = !estimate;
    t_stages = !stages_run;
  }

let staged_best ~domains ~physical ~stages ~f wl =
  let best = ref (staged_once ~domains ~physical ~stages ~f wl) in
  for _ = 2 to repeats do
    let r = staged_once ~domains ~physical ~stages ~f wl in
    (* wall is the only noisy field; the rest must not vary at all *)
    if r.t_virtual <> !best.t_virtual || r.t_estimate <> !best.t_estimate then
      failwith "parallel bench: repeat runs diverged (non-deterministic!)";
    if r.t_wall_ms < !best.t_wall_ms then best := r
  done;
  !best

(* The full-engine observable surface, as one comparable string. *)
let engine_fingerprint ~domains ~quota (wl : Paper_setup.t) =
  let config =
    {
      Config.default with
      Config.stopping = Stopping.Soft_deadline { grace = 1e9 };
      domains;
    }
  in
  let sink, events = Sink.memory () in
  let rng = Prng.create 13 in
  let clock = Clock.create_virtual () in
  let tracer = Tracer.make ~now:(fun () -> Clock.now clock) ~sink in
  let device =
    Device.create ~params:Cost_params.default ~jitter_rng:(Prng.split rng)
      ~tracer clock
  in
  let ledger = Ledger.create () in
  Device.set_spend_listener device (Some (Ledger.on_spend ledger));
  let r =
    Executor.run ~config ~aggregate:Aggregate.Count ~device
      ~catalog:wl.Paper_setup.catalog ~rng ~quota wl.Paper_setup.query
  in
  Tracer.close tracer;
  let rc = Ledger.reconcile ~quota ledger in
  Fmt.str "%.17g|%.17g|%.17g|%.17g|%d|%b|%a|events=%d|charged=%.17g|%b"
    r.Report.estimate r.Report.variance
    r.Report.confidence.Taqp_stats.Confidence.half_width r.Report.elapsed
    r.Report.stages_completed r.Report.degraded Io_stats.pp r.Report.io
    (List.length (events ()))
    rc.Ledger.r_charged rc.Ledger.r_exact

let write ?(path = "BENCH_parallel.json") ?(stages = 8) ?(f = 0.1) () =
  Fmt.pr "@.=== Sharded parallel execution (1 vs N domains) ===@.";
  let cores = Domain.recommended_domain_count () in
  (* Test-sized thresholds would mis-measure; engage the pool once a
     region holds a few hundred tuples so mid-size stages fan out. *)
  Staged.set_parallel_threshold 256;
  let identical = ref true in
  let note ok ctx =
    if not ok then begin
      identical := false;
      Fmt.epr "IDENTITY VIOLATION: %s@." ctx
    end
  in
  (* --- timing sweep --- *)
  let timing =
    List.map
      (fun (name, wl) ->
        let runs =
          List.map
            (fun domains ->
              ( domains,
                staged_best ~domains ~physical:Config.Sort_merge ~stages ~f wl
              ))
            domains_swept
        in
        let base = List.assoc 1 runs in
        List.iter
          (fun (d, (r : timed)) ->
            note
              (r.t_estimate = base.t_estimate && r.t_virtual = base.t_virtual
             && r.t_stages = base.t_stages)
              (Fmt.str "%s timing domains=%d" name d))
          runs;
        let speedup d = base.t_wall_ms /. (List.assoc d runs).t_wall_ms in
        Fmt.pr
          "  %-16s wall 1d %8.1fms  2d %8.1fms  4d %8.1fms  speedup(4) \
           %.2fx  virtual %.3fs@."
          name base.t_wall_ms (List.assoc 2 runs).t_wall_ms
          (List.assoc 4 runs).t_wall_ms (speedup 4) base.t_virtual;
        (name, wl, runs, speedup 2, speedup 4))
      (timing_workloads ())
  in
  (* --- full-engine identity sweep --- *)
  let identity =
    List.map
      (fun (name, wl, quota) ->
        let base = engine_fingerprint ~domains:1 ~quota wl in
        let cells =
          List.map
            (fun d ->
              let fp = engine_fingerprint ~domains:d ~quota wl in
              note (fp = base) (Fmt.str "%s engine domains=%d" name d);
              (d, fp = base))
            domains_swept
        in
        Fmt.pr "  %-16s engine fingerprint identical at domains {1,2,4}: %b@."
          name
          (List.for_all snd cells);
        (name, cells))
      (identity_workloads ())
  in
  (* headline: the best multi-join speedup (both timing workloads are
     multi-joins; report whichever parallelizes best on this host) *)
  let headline_query, s2, s4 =
    List.fold_left
      (fun (bn, b2, b4) (n, _, _, s2, s4) ->
        if s4 > b4 then (n, s2, s4) else (bn, b2, b4))
      ("", 0.0, 0.0) timing
  in
  let assert_speedup = cores >= 4 in
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "taqp-bench-parallel/1");
        ("cores", Json.Num (float_of_int cores));
        ("domains", Json.List (List.map (fun d -> Json.Num (float_of_int d)) domains_swept));
        ("stages_per_run", Json.Num (float_of_int stages));
        ("stage_fraction", Json.Num f);
        ("speedup_target", Json.Num speedup_target);
        ("all_identical", Json.Bool !identical);
        ( "headline",
          Json.Obj
            [
              ("query", Json.Str headline_query);
              ("speedup_2", Json.Num s2);
              ("speedup_4", Json.Num s4);
              ("asserted", Json.Bool assert_speedup);
            ] );
        ( "timing",
          Json.List
            (List.map
               (fun (name, wl, runs, s2, s4) ->
                 Json.Obj
                   [
                     ("query", Json.Str name);
                     ("exact", Json.Num (float_of_int wl.Paper_setup.exact));
                     ("speedup_2", Json.Num s2);
                     ("speedup_4", Json.Num s4);
                     ( "runs",
                       Json.List
                         (List.map
                            (fun (d, (r : timed)) ->
                              Json.Obj
                                [
                                  ("domains", Json.Num (float_of_int d));
                                  ("wall_ms", Json.Num r.t_wall_ms);
                                  ("virtual_seconds", Json.Num r.t_virtual);
                                  ("estimate", Json.Num r.t_estimate);
                                  ("stages", Json.Num (float_of_int r.t_stages));
                                ])
                            runs) );
                   ])
               timing) );
        ( "identity",
          Json.List
            (List.map
               (fun (name, cells) ->
                 Json.Obj
                   [
                     ("query", Json.Str name);
                     ( "cells",
                       Json.List
                         (List.map
                            (fun (d, ok) ->
                              Json.Obj
                                [
                                  ("domains", Json.Num (float_of_int d));
                                  ("identical", Json.Bool ok);
                                ])
                            cells) );
                   ])
               identity) );
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Staged.set_parallel_threshold 2048;
  Fmt.pr "wrote %s (cores=%d, speedup(4)=%.2fx, assertion %s)@." path cores s4
    (if assert_speedup then "armed" else "skipped: < 4 cores");
  if not !identical then
    failwith "parallel bench: 1-vs-N outputs differ — see violations above";
  if assert_speedup && s4 < speedup_target then
    failwith
      (Fmt.str
         "parallel bench: speedup at 4 domains %.2fx below the %.1fx target"
         s4 speedup_target)
