(* Bechamel micro-benchmarks of the physical operators — real wall-clock
   costs of the primitives the virtual device models. Useful when
   porting the cost model to a real machine: the measured ns/run here
   play the role of the SUN 3/60 calibration constants. *)

open Bechamel
open Toolkit
module Generator = Taqp_workload.Generator
module Heap_file = Taqp_storage.Heap_file
module Ops = Taqp_relational.Ops
module Predicate = Taqp_relational.Predicate
module Ra = Taqp_relational.Ra
module Eval = Taqp_relational.Eval
module Catalog = Taqp_storage.Catalog

let spec = { Generator.n_tuples = 2_000; tuple_bytes = 200; block_bytes = 1024 }

let rng = Taqp_rng.Prng.create 42
let file = Generator.relation ~spec ~key:(fun i -> i / 4) ~rng ()
let tuples = Array.of_list (Heap_file.to_list file)
let schema = Heap_file.schema file

let pred =
  Predicate.Cmp (Predicate.Lt, Predicate.Attr "sel", Predicate.Const (Taqp_data.Value.Int 500))

let test_select =
  Test.make ~name:"select/2000-tuples"
    (Staged.stage (fun () -> ignore (Ops.select ~schema pred tuples)))

let test_sort =
  let key = Ops.key_positions schema [ "key" ] in
  Test.make ~name:"sort/2000-tuples"
    (Staged.stage (fun () -> ignore (Ops.sort_stage ~key tuples)))

let join_right =
  let rng = Taqp_rng.Prng.create 43 in
  let f = Generator.relation ~spec ~key:(fun i -> i / 4) ~rng () in
  Array.of_list (Heap_file.to_list f)

let test_merge_join =
  let sl = Taqp_data.Schema.qualify "l" schema in
  let sr = Taqp_data.Schema.qualify "r" schema in
  let p = Predicate.Cmp (Predicate.Eq, Predicate.Attr "l.key", Predicate.Attr "r.key") in
  Test.make ~name:"merge-join/2000x2000"
    (Staged.stage (fun () -> ignore (Ops.merge_join ~schema_l:sl ~schema_r:sr p tuples join_right)))

let test_hash_join =
  let key = Ops.key_positions schema [ "key" ] in
  Test.make ~name:"hash-join/2000x2000"
    (Staged.stage (fun () ->
         let index = Ops.Hash_index.create ~key in
         Ops.Hash_index.add index join_right;
         ignore
           (Ops.hash_probe_join ~index ~probe_key:key ~indexed_side:`Right
              ~residual:(fun _ -> true)
              ~residual_comparisons:0 tuples)))

(* The sort-comparator pair quantifies the precompiled key_comparator
   against the closure-based compare_with_key it replaced on the
   Staged hot path. *)
let test_sort_closure_cmp =
  let key = Ops.key_positions schema [ "key" ] in
  Test.make ~name:"sort-cmp/closure/2000-tuples"
    (Staged.stage (fun () ->
         let a = Array.copy tuples in
         Array.sort (Ops.compare_with_key key) a))

let test_sort_precompiled_cmp =
  let key = Ops.key_positions schema [ "key" ] in
  let cmp = Ops.key_comparator ~arity:(Taqp_data.Schema.arity schema) key in
  Test.make ~name:"sort-cmp/precompiled/2000-tuples"
    (Staged.stage (fun () ->
         let a = Array.copy tuples in
         Array.sort cmp a))

let test_project =
  Test.make ~name:"project-groups/2000-tuples"
    (Staged.stage (fun () -> ignore (Ops.project_groups ~schema [ "grp" ] tuples)))

let test_exact_count =
  let catalog = Catalog.of_list [ ("r", file) ] in
  let q = Ra.Select (pred, Ra.relation "r") in
  Test.make ~name:"exact-count/select-2000"
    (Staged.stage (fun () -> ignore (Eval.count catalog q)))

let test_staged_stage =
  let wl =
    Taqp_workload.Paper_setup.selection
      ~spec:{ Generator.n_tuples = 1_000; tuple_bytes = 200; block_bytes = 1024 }
      ~output:100 ~seed:7 ()
  in
  let config =
    {
      Taqp_core.Config.default with
      Taqp_core.Config.stopping =
        Taqp_timecontrol.Stopping.Soft_deadline { grace = 1e9 };
      trace = false;
    }
  in
  Test.make ~name:"taqp-run/select-1000t-quota2s"
    (Staged.stage (fun () ->
         ignore
           (Taqp_core.Taqp.count_within ~config ~seed:1
              wl.Taqp_workload.Paper_setup.catalog ~quota:2.0
              wl.Taqp_workload.Paper_setup.query)))

let tests =
  [
    test_select;
    test_sort;
    test_merge_join;
    test_hash_join;
    test_sort_closure_cmp;
    test_sort_precompiled_cmp;
    test_project;
    test_exact_count;
    test_staged_stage;
  ]

let run () =
  Fmt.pr "@.=== Micro-benchmarks (bechamel, wall clock) ===@.";
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ time_ns ] ->
              Fmt.pr "%-32s %12.0f ns/run@." name time_ns
          | _ -> Fmt.pr "%-32s (no estimate)@." name)
        analyzed)
    tests
