(* The physical-path performance report: drive Staged directly (no
   time-control loop, jitter-free device, fixed per-stage fraction) so
   sort, hash and adaptive runs evaluate exactly the same sample at
   every stage, and dump per-query wall-clock and virtual-device costs
   to BENCH_perf.json — the machine-readable record of the hash path's
   late-stage advantage, for tracking across commits. *)

module Config = Taqp_core.Config
module Staged = Taqp_core.Staged
module Paper_setup = Taqp_workload.Paper_setup
module Generator = Taqp_workload.Generator
module Cost_model = Taqp_timecost.Cost_model
module Count_estimator = Taqp_estimators.Count_estimator
module Prng = Taqp_rng.Prng
module Clock = Taqp_storage.Clock
module Device = Taqp_storage.Device
module Cost_params = Taqp_storage.Cost_params
module Json = Taqp_obs.Json

let spec = { Generator.n_tuples = 2_000; tuple_bytes = 200; block_bytes = 1024 }

let workloads =
  [
    ("join", Paper_setup.join ~spec ~seed:3 ());
    ("intersection", Paper_setup.intersection ~spec ~overlap:500 ~seed:4 ());
    ( "three_way_join",
      Paper_setup.three_way_join
        ~spec:{ spec with Generator.n_tuples = 1_000 }
        ~group_size:3 ~seed:5 () );
  ]

let modes =
  [
    ("sort", Config.Sort_merge);
    ("hash", Config.Hash);
    ("adaptive", Config.Adaptive);
  ]

type run = {
  stages_run : int;
  wall_ms : float;
  virtual_seconds : float;  (** whole-device clock, scans included *)
  operator_virtual_seconds : float;  (** per-stage operator time summed *)
  estimate : float;
}

let run_staged ~physical ~stages ~f (wl : Paper_setup.t) =
  let config = { Config.default with Config.physical } in
  let cost_model = Cost_model.create () in
  let staged =
    Staged.compile ~catalog:wl.catalog ~config ~rng:(Prng.create 11)
      ~cost_model wl.query
  in
  let clock = Clock.create_virtual () in
  let device =
    Device.create ~params:(Cost_params.no_jitter Cost_params.default) clock
  in
  let t0 = Unix.gettimeofday () in
  let stages_run = ref 0 in
  let op_cost = ref 0.0 in
  let estimate = ref 0.0 in
  for _ = 1 to stages do
    match Staged.run_stage staged ~device ~f with
    | Some r ->
        incr stages_run;
        op_cost := !op_cost +. r.Staged.nodes_elapsed;
        estimate := r.Staged.estimate.Count_estimator.estimate
    | None -> ()
  done;
  {
    stages_run = !stages_run;
    wall_ms = (Unix.gettimeofday () -. t0) *. 1e3;
    virtual_seconds = Clock.now clock;
    operator_virtual_seconds = !op_cost;
    estimate = !estimate;
  }

let run_json name (r : run) =
  Json.Obj
    [
      ("mode", Json.Str name);
      ("stages", Json.Num (float_of_int r.stages_run));
      ("wall_ms", Json.Num r.wall_ms);
      ("virtual_seconds", Json.Num r.virtual_seconds);
      ("operator_virtual_seconds", Json.Num r.operator_virtual_seconds);
      ("estimate", Json.Num r.estimate);
    ]

let query_json ~stages ~f (name, wl) =
  let runs = List.map (fun (mn, p) -> (mn, run_staged ~physical:p ~stages ~f wl)) modes in
  let cost m = (List.assoc m runs).operator_virtual_seconds in
  Fmt.pr "  %-16s sort %8.4fs  hash %8.4fs  adaptive %8.4fs  (virtual op cost, %d stages)@."
    name (cost "sort") (cost "hash") (cost "adaptive") stages;
  Json.Obj
    [
      ("query", Json.Str name);
      ("exact", Json.Num (float_of_int wl.Paper_setup.exact));
      ("modes", Json.List (List.map (fun (mn, r) -> run_json mn r) runs));
    ]

let write ?(path = "BENCH_perf.json") ?(stages = 6) ?(f = 0.05) () =
  Fmt.pr "@.=== Physical-path perf (sort vs hash vs adaptive) ===@.";
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "taqp-bench-perf/1");
        ("stages_per_run", Json.Num (float_of_int stages));
        ("stage_fraction", Json.Num f);
        ("queries", Json.List (List.map (query_json ~stages ~f) workloads));
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Fmt.pr "wrote %s (%d queries x %d modes)@." path (List.length workloads)
    (List.length modes)
