(* The observability report: run each paper workload a few times with a
   metrics registry attached and dump the aggregated stage-cost and
   overspend distributions plus device activity to BENCH_obs.json —
   machine-readable counterparts of the tables, for tracking cost-model
   calibration drift across commits. *)

module Taqp = Taqp_core.Taqp
module Config = Taqp_core.Config
module Report = Taqp_core.Report
module Stopping = Taqp_timecontrol.Stopping
module Paper_setup = Taqp_workload.Paper_setup
module Generator = Taqp_workload.Generator
module Metrics = Taqp_obs.Metrics
module Json = Taqp_obs.Json

let spec = { Generator.paper_spec with Generator.n_tuples = 2_000 }

let workloads =
  [
    ("selection", fun seed -> Paper_setup.selection ~spec ~seed ());
    ("join", fun seed -> Paper_setup.join ~spec ~seed ());
    ("intersection", fun seed -> Paper_setup.intersection ~spec ~seed ());
    ("projection", fun seed -> Paper_setup.projection ~spec ~seed ());
    ("select_join", fun seed -> Paper_setup.select_join ~spec ~seed ());
  ]

let observe_config =
  {
    Config.default with
    Config.stopping = Stopping.Soft_deadline { grace = 1e9 };
  }

let histogram_json h =
  Json.Obj
    [
      ("n", Json.Num (float_of_int (Metrics.Histogram.count h)));
      ("mean", Json.Num (Metrics.Histogram.mean h));
      ("p50", Json.Num (Metrics.Histogram.quantile h 0.5));
      ("p95", Json.Num (Metrics.Histogram.quantile h 0.95));
      ( "buckets",
        Json.List
          (List.map
             (fun (le, n) ->
               Json.Obj
                 [ ("le", Json.Num le); ("n", Json.Num (float_of_int n)) ])
             (Metrics.Histogram.buckets h)) );
    ]

let query_json ~trials ~quota name make =
  let metrics = Metrics.create () in
  let stages = ref 0 and aborted = ref 0 in
  for seed = 1 to trials do
    let wl = make seed in
    let r =
      Taqp.count_within ~config:observe_config ~seed ~metrics
        wl.Paper_setup.catalog ~quota wl.Paper_setup.query
    in
    stages := !stages + r.Report.stages_completed;
    if r.Report.stage_aborted then incr aborted
  done;
  let counter n = float_of_int (List.assoc n (Metrics.counters metrics)) in
  let hist n = List.assoc n (Metrics.histograms metrics) in
  Json.Obj
    [
      ("query", Json.Str name);
      ("trials", Json.Num (float_of_int trials));
      ("quota", Json.Num quota);
      ("stages_completed", Json.Num (float_of_int !stages));
      ("stages_aborted_or_overspent", Json.Num (float_of_int !aborted));
      ("blocks_read", Json.Num (counter "io.blocks_read"));
      ("tuples_checked", Json.Num (counter "io.tuples_checked"));
      ("stage_cost", histogram_json (hist "stage.actual_cost"));
      ("predicted_cost", histogram_json (hist "stage.predicted_cost"));
      ("overspend", histogram_json (hist "query.overspend"));
    ]

let write ?(path = "BENCH_obs.json") ?(trials = 10) ?(quota = 2.0) () =
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "taqp-bench-obs/1");
        ("trials_per_query", Json.Num (float_of_int trials));
        ("quota_seconds", Json.Num quota);
        ( "queries",
          Json.List
            (List.map
               (fun (name, make) -> query_json ~trials ~quota name make)
               workloads) );
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Fmt.pr "wrote %s (%d queries x %d trials)@." path (List.length workloads)
    trials
