(* The benchmark harness: regenerates every table of the paper's
   evaluation section plus the ablations behind the Figure 3.2
   implementation-decision matrix and bechamel micro-benchmarks.

   Usage:
     main.exe                      everything (tables, ablations,
                                   scheduling, micro)
     main.exe --trials 50          faster run
     main.exe --tables             the paper's tables only
     main.exe --table 5.1          one table
     main.exe --ablations          ablation suite
     main.exe --micro              bechamel micro-benchmarks
     main.exe --scheduling         deadline-miss simulation (exact vs taqp)
     main.exe --sched              scheduler policy/admission sweep (BENCH_sched.json)
     main.exe --audit              deadline accountability audit (BENCH_audit.json)
     main.exe --perf               physical-path perf report (BENCH_perf.json)
     main.exe --chaos              fault-injection matrix (BENCH_chaos.json)
     main.exe --chaos --fault-seed 7   ... with a different injector seed
     main.exe --recover            crash-recovery benchmark (BENCH_recover.json)
     main.exe --cache              shared-cache sweep (BENCH_cache.json)
     main.exe --parallel           1-vs-N domains sweep (BENCH_parallel.json)
     main.exe --serve              socket serving under open-loop load (BENCH_serve.json)
     main.exe --full               everything *)

let usage () =
  print_endline
    "usage: main.exe [--trials N] [--table 5.1|5.2|5.3] [--ablations] \
     [--micro] [--scheduling] [--sched] [--audit] [--perf] [--chaos] \
     [--fault-seed N] [--recover] [--cache] [--parallel] [--serve] [--ha] [--full]";
  exit 1

type mode =
  | Tables of string option
  | Ablations
  | Micro
  | Scheduling
  | Sched_bench
  | Audit_bench
  | Perf
  | Chaos
  | Recover
  | Cache_bench
  | Parallel
  | Serve
  | Ha
  | Full

let () =
  let trials = ref 200 in
  let mode = ref Full in
  let fault_seed = ref 42 in
  let rec parse = function
    | [] -> ()
    | "--trials" :: n :: rest ->
        (match int_of_string_opt n with
        | Some v when v > 0 -> trials := v
        | _ -> usage ());
        parse rest
    | "--fault-seed" :: n :: rest ->
        (match int_of_string_opt n with
        | Some v -> fault_seed := v
        | None -> usage ());
        parse rest
    | "--chaos" :: rest ->
        mode := Chaos;
        parse rest
    | "--table" :: t :: rest ->
        mode := Tables (Some t);
        parse rest
    | "--tables" :: rest ->
        mode := Tables None;
        parse rest
    | "--ablations" :: rest ->
        mode := Ablations;
        parse rest
    | "--micro" :: rest ->
        mode := Micro;
        parse rest
    | "--scheduling" :: rest ->
        mode := Scheduling;
        parse rest
    | "--sched" :: rest ->
        mode := Sched_bench;
        parse rest
    | "--audit" :: rest ->
        mode := Audit_bench;
        parse rest
    | "--perf" :: rest ->
        mode := Perf;
        parse rest
    | "--recover" :: rest ->
        mode := Recover;
        parse rest
    | "--cache" :: rest ->
        mode := Cache_bench;
        parse rest
    | "--parallel" :: rest ->
        mode := Parallel;
        parse rest
    | "--serve" :: rest ->
        mode := Serve;
        parse rest
    | "--ha" :: rest ->
        mode := Ha;
        parse rest
    | "--full" :: rest ->
        mode := Full;
        parse rest
    | "--help" :: _ | "-h" :: _ -> usage ()
    | _ -> usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  let trials = !trials in
  let run_tables filter =
    let tables =
      match filter with
      | Some "5.1" -> Tables.table_5_1 ~trials ()
      | Some "5.2" -> Tables.table_5_2 ~trials ()
      | Some "5.3" -> Tables.table_5_3 ~trials ()
      | Some _ -> usage ()
      | None -> Tables.all ~trials ()
    in
    List.iter Tables.print_table tables
  in
  Fmt.pr
    "taqp bench — time-constrained COUNT evaluation (Hou, Ozsoyoglu & \
     Taneja, SIGMOD 1989)@.%d trials per table row; virtual-clock device \
     (see DESIGN.md)@."
    trials;
  (match !mode with
  | Tables filter -> run_tables filter
  | Ablations -> Ablations.all ~trials ()
  | Micro -> Micro.run ()
  | Scheduling -> Scheduling.run ()
  | Sched_bench -> Scheduling.write ()
  | Audit_bench -> Audit.write ()
  | Perf -> Perf.write ()
  | Chaos -> Chaos.write ~fault_seed:!fault_seed ()
  | Recover -> Recover.write ()
  | Cache_bench -> Cache.write ()
  | Parallel -> Parallel.write ()
  | Serve -> Serve.write ()
  | Ha -> Ha.write ()
  | Full ->
      run_tables None;
      Ablations.all ~trials ();
      Scheduling.run ();
      Scheduling.write ();
      Audit.write ();
      Micro.run ();
      Perf.write ();
      Chaos.write ~fault_seed:!fault_seed ();
      Recover.write ();
      Cache.write ();
      Parallel.write ();
      Serve.write ();
      Ha.write ());
  (* Every run also refreshes the machine-readable observability
     report: per-query stage-cost and overspend distributions from the
     metrics registry (see docs/OBSERVABILITY.md). *)
  Obs_report.write ~trials:(Int.min trials 10) ()
