(* BENCH_audit.json: deadline accountability over the sweep's hottest
   cell — the same 40-job arrival stream as BENCH_sched.json's
   mean_gap=2.0 FIFO/no-admission cell (the one that misses the most),
   re-run with the full audit stack attached:

   - a per-job budget ledger (Meter on the scheduler's device) whose
     reconciliation must come back bit-exact for every metered job;
   - miss forensics naming a root cause for every missed job;
   - the cost-model drift monitor across all dispatched handles.

   The artifact is CI's evidence that the accountability layer is
   total: every job row carries its outcome, its cause (null iff it
   did not miss) and its ledger closure, and the audit hooks are
   observational — the summary here must equal the corresponding
   BENCH_sched.json cell's. *)

module Executor = Taqp_core.Executor
module Json = Taqp_obs.Json
module Job = Taqp_sched.Job
module Policy = Taqp_sched.Policy
module Scheduler = Taqp_sched.Scheduler
module Ledger = Taqp_audit.Ledger
module Meter = Taqp_audit.Meter
module Drift = Taqp_audit.Drift
module Forensics = Taqp_audit.Forensics

let job_row meter (jr : Scheduler.job_report) =
  let id = jr.Scheduler.job.Job.id in
  let ledger =
    if List.mem id (Meter.job_ids meter) then
      Ledger.reconciliation_json
        (Ledger.reconcile ?quota:jr.Scheduler.quota (Meter.ledger meter id))
    else Json.Null
  in
  let cause =
    match Forensics.classify jr with
    | None -> Json.Null
    | Some v -> Forensics.verdict_json v
  in
  Json.Obj
    [
      ("id", Json.Num (float_of_int id));
      ("label", Json.Str jr.Scheduler.job.Job.label);
      ("outcome", Json.Str (Scheduler.outcome_name jr));
      ("admitted", Json.Bool jr.Scheduler.admitted);
      ("missed", Json.Bool jr.Scheduler.missed);
      ("lateness", Json.Num jr.Scheduler.lateness);
      ("queue_wait", Json.Num jr.Scheduler.queue_wait);
      ("service", Json.Num jr.Scheduler.service);
      ("cause", cause);
      ("ledger", ledger);
    ]

let write ?(path = "BENCH_audit.json") ?(jobs = 40) () =
  let mean_gap = 2.0 in
  let job_list =
    List.map snd (Scheduling.make_jobs ~trace:true ~n:jobs ~mean_gap ~seed:777 ())
  in
  let meter = Meter.create () in
  let drift = Drift.create () in
  let result =
    Scheduler.run ~policy:Policy.Fifo
      ~on_device:(Meter.attach meter)
      ~account:(Meter.set_account meter)
      ~on_dispatch:(fun _ h ->
        Executor.on_cost_observation h (Drift.observer drift))
      job_list
  in
  let reports = result.Scheduler.reports in
  let verdicts = List.filter_map Forensics.classify reports in
  let breakdown = Forensics.breakdown verdicts in
  let ledgers_exact =
    List.for_all
      (fun (jr : Scheduler.job_report) ->
        let id = jr.Scheduler.job.Job.id in
        (not (List.mem id (Meter.job_ids meter)))
        || (Ledger.reconcile ?quota:jr.Scheduler.quota (Meter.ledger meter id))
             .Ledger.r_exact)
      reports
    && (Ledger.reconcile (Meter.system meter)).Ledger.r_exact
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "taqp-bench-audit/1");
        ("jobs", Json.Num (float_of_int jobs));
        ("seed", Json.Num 777.0);
        ("mean_gap", Json.Num mean_gap);
        ("policy", Json.Str (Policy.name Policy.Fifo));
        ("admission", Json.Bool false);
        ("summary", Scheduler.summary_json result.Scheduler.summary);
        ("ledgers_exact", Json.Bool ledgers_exact);
        ( "system_ledger",
          Ledger.reconciliation_json (Ledger.reconcile (Meter.system meter)) );
        ("forensics", Forensics.breakdown_json breakdown);
        ("drift", Drift.report_json (Drift.report drift));
        ("job_reports", Json.List (List.map (job_row meter) reports));
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Fmt.pr
    "@.wrote %s (%d jobs: %d missed, all causes named; ledgers exact: %b)@."
    path jobs breakdown.Forensics.b_missed ledgers_exact
