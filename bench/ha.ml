(* BENCH_ha.json: the replicated serving tier under backend loss.

   Three experiments, one file:

   1. Anchor — a 1-backend in-process cluster fed the same job list as
      a direct journaled [Scheduler.run] must reproduce it byte for
      byte: every terminal record identical as a framed RESULT, the
      summary identical as JSON. The balancer is routing, never
      semantics.

   2. Failover — a 3-backend cluster at the hottest arrival rate from
      BENCH_serve, with backend 0 shot mid-serve. With failover on,
      the dead backend's journaled unfinished jobs migrate to
      survivors (downtime charged against their slack); with failover
      off each is written off as lost. The headline assertion: at
      equal offered load and an identical kill point, failover-on
      strictly cuts the deadline-miss rate — and every terminal
      replayed from the dead journal is byte-identical to its live
      push.

   3. Chaos — the multi-process path: a [Balancer.Proxy] over three
      real [Server] processes (on domains), open-loop load from
      [Taqp_net.Load] with the chaos hook killing one backend
      mid-schedule. The tier must keep serving: exactly one death,
      every queued job exactly one terminal verdict, no duplicates.

   [write] exits non-zero when any headline claim fails — CI runs it
   as a check, not a chart. *)

module Config = Taqp_core.Config
module Stopping = Taqp_timecontrol.Stopping
module Generator = Taqp_workload.Generator
module Paper_setup = Taqp_workload.Paper_setup
module Arrivals = Taqp_workload.Arrivals
module Catalog = Taqp_storage.Catalog
module Prng = Taqp_rng.Prng
module Json = Taqp_obs.Json
module Ra = Taqp_relational.Ra
module Job = Taqp_sched.Job
module Admission = Taqp_sched.Admission
module Engine = Taqp_sched.Engine
module Scheduler = Taqp_sched.Scheduler
module Sched_journal = Taqp_sched.Sched_journal
module Journal = Taqp_recover.Journal
module Wire = Taqp_net.Wire
module Server = Taqp_net.Server
module Load = Taqp_net.Load
module Balancer = Taqp_net.Balancer

let spec = { Generator.n_tuples = 2_000; tuple_bytes = 200; block_bytes = 1024 }

(* Same three query classes as BENCH_serve: a merged catalog with
   aliased relations, so the wire query text is semantically the
   in-process scheduling bench's. *)
let classes =
  lazy
    (let sel = Paper_setup.selection ~spec ~output:200 ~seed:301 () in
     let join = Paper_setup.join ~spec ~seed:302 () in
     let inter = Paper_setup.intersection ~spec ~overlap:500 ~seed:303 () in
     let catalog = Catalog.create () in
     Catalog.add catalog "sr" (Catalog.find sel.Paper_setup.catalog "r");
     Catalog.add catalog "jr1" (Catalog.find join.Paper_setup.catalog "r1");
     Catalog.add catalog "jr2" (Catalog.find join.Paper_setup.catalog "r2");
     Catalog.add catalog "ir1" (Catalog.find inter.Paper_setup.catalog "r1");
     Catalog.add catalog "ir2" (Catalog.find inter.Paper_setup.catalog "r2");
     let module P = Taqp_relational.Predicate in
     let lt a v = P.Cmp (P.Lt, P.Attr a, P.Const (Taqp_data.Value.Int v)) in
     let eq a b = P.Cmp (P.Eq, P.Attr a, P.Attr b) in
     let queries =
       [|
         ( "select",
           Ra.Select (lt "sel" 200, Ra.relation ~alias:"r" "sr"),
           4.0,
           1,
           None );
         ( "join",
           Ra.Join
             ( eq "r1.key" "r2.key",
               Ra.relation ~alias:"r1" "jr1",
               Ra.relation ~alias:"r2" "jr2" ),
           10.0,
           2,
           Some 0.02 );
         ( "intersect",
           Ra.Intersect
             (Ra.relation ~alias:"r1" "ir1", Ra.relation ~alias:"r2" "ir2"),
           25.0,
           1,
           None );
       |]
     in
     (catalog, queries))

let config =
  {
    Config.default with
    Config.stopping = Stopping.Hard_deadline;
    initial_selectivities =
      { Config.no_initial_overrides with Config.join = Some 0.01 };
  }

let class_sequence ~n ~seed =
  let _, queries = Lazy.force classes in
  let rng = Prng.create seed in
  Array.init n (fun _ -> Taqp_rng.Sample.choose rng queries)

let job_line classes_drawn ~index ~arrival ~deadline =
  let name, query, _, priority, min_rhw = classes_drawn.(index) in
  let opts =
    Printf.sprintf "priority=%d,seed=%d,label=%s-%d" priority (1000 + index)
      name index
    ^ match min_rhw with None -> "" | Some r -> Printf.sprintf ",min_rhw=%g" r
  in
  Printf.sprintf "%.17g | %.17g | %s | %s" arrival deadline
    (Ra.to_string query) opts

let slack_of classes_drawn index =
  let _, _, slack, _, _ = classes_drawn.(index) in
  slack

let fresh_dir stem =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "taqp_ha_%s_%d" stem (Unix.getpid ()))
  in
  (try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  d

let cleanup_dir d =
  (try
     Sys.readdir d
     |> Array.iter (fun f -> try Sys.remove (Filename.concat d f) with _ -> ())
   with Sys_error _ -> ());
  try Unix.rmdir d with Unix.Unix_error _ -> ()

let result_frame d = Wire.frame_message (Wire.Result d)

(* ------------------------------------------------------------------ *)
(* 1. Anchor: 1-backend cluster == direct journaled Scheduler.run.    *)

let anchor ~n ~seed =
  let catalog, _ = Lazy.force classes in
  let classes_drawn = class_sequence ~n ~seed in
  let offsets = Arrivals.arrivals Arrivals.Poisson ~rate:(1.0 /. 6.0) ~n ~seed in
  let lines =
    Array.mapi
      (fun i off ->
        job_line classes_drawn ~index:i ~arrival:off
          ~deadline:(off +. slack_of classes_drawn i))
      offsets
  in
  (* Baseline journals too: journal writes are charged to the shared
     clock, so only a journaled run is comparable bit-for-bit. *)
  let jpath = Filename.temp_file "taqp_ha_anchor" ".journal" in
  let w = Journal.create jpath in
  let jobs =
    Array.to_list
      (Array.mapi
         (fun id line ->
           match Job.of_line ~catalog ~config ~id line with
           | Ok (Some j) -> j
           | _ -> failwith "anchor line unparseable")
         lines)
  in
  let base = Scheduler.run ~journal:w jobs in
  Journal.close w;
  (try Sys.remove jpath with Sys_error _ -> ());
  let dir = fresh_dir "anchor" in
  let cluster = Balancer.Cluster.create ~dir ~backends:1 ~catalog ~config () in
  Array.iter
    (fun line ->
      match Balancer.Cluster.submit cluster line with
      | `Queued _ -> ()
      | `Rejected (m, _) -> failwith ("anchor submit rejected: " ^ m))
    lines;
  let out = Balancer.Cluster.drain cluster in
  cleanup_dir dir;
  let base_records = List.map Engine.to_done_record base.Scheduler.reports in
  let records_identical =
    List.length base_records = List.length out.Balancer.Cluster.o_records
    && List.for_all2
         (fun a b -> String.equal (result_frame a) (result_frame b))
         base_records out.Balancer.Cluster.o_records
  in
  let summary_identical =
    String.equal
      (Json.to_string (Scheduler.summary_json base.Scheduler.summary))
      (Json.to_string
         (Scheduler.summary_json out.Balancer.Cluster.o_summary))
  in
  let jsonl records =
    List.map
      (fun d -> Json.to_string (Scheduler.done_record_json d))
      records
  in
  let jsonl_identical =
    jsonl base_records = jsonl out.Balancer.Cluster.o_records
  in
  ( records_identical && summary_identical && jsonl_identical,
    Json.Obj
      [
        ("jobs", Json.Num (float_of_int n));
        ("records_identical", Json.Bool records_identical);
        ("jsonl_identical", Json.Bool jsonl_identical);
        ("summary_identical", Json.Bool summary_identical);
      ] )

(* ------------------------------------------------------------------ *)
(* 2. Failover: kill one of three backends at the hottest rate.       *)

type ha_cell = {
  failover : bool;
  outcome : Balancer.Cluster.outcome;
  offered : int;
  door_rejected : int;
}

let hottest_gap = 1.5
let kill_downtime = 2.0

let run_ha_cell ~failover ~n ~seed =
  let catalog, _ = Lazy.force classes in
  let classes_drawn = class_sequence ~n ~seed in
  let offsets =
    Arrivals.arrivals Arrivals.Poisson ~rate:(1.0 /. hottest_gap) ~n ~seed
  in
  let admission = Admission.make ~max_queue:8 ~headroom:1.2 () in
  let dir = fresh_dir (if failover then "on" else "off") in
  let cluster =
    Balancer.Cluster.create ~admission ~dir ~backends:3 ~catalog ~config ()
  in
  let kill_at = 2 * n / 5 in
  let door_rejected = ref 0 in
  Array.iteri
    (fun i off ->
      if i = kill_at then
        Balancer.Cluster.kill cluster ~backend:0 ~downtime:kill_downtime
          ~failover ();
      Balancer.Cluster.advance cluster ~upto:off;
      (* the schedule is absolute; the wire speaks offsets from the
         cluster's (possibly slightly overshot) virtual now *)
      let nowv = Balancer.Cluster.now cluster in
      let arrival = Float.max 0.0 (off -. nowv) in
      let deadline =
        Float.max (arrival +. 1e-9) (off +. slack_of classes_drawn i -. nowv)
      in
      let line = job_line classes_drawn ~index:i ~arrival ~deadline in
      match Balancer.Cluster.submit cluster line with
      | `Queued _ -> ()
      | `Rejected _ -> incr door_rejected)
    offsets;
  let outcome = Balancer.Cluster.drain cluster in
  cleanup_dir dir;
  { failover; outcome; offered = n; door_rejected = !door_rejected }

let ha_cell_json (c : ha_cell) =
  let o = c.outcome in
  let s = o.Balancer.Cluster.o_summary in
  Json.Obj
    [
      ("failover", Json.Bool c.failover);
      ("offered", Json.Num (float_of_int c.offered));
      ("door_rejected", Json.Num (float_of_int c.door_rejected));
      ("miss_rate", Json.Num s.Engine.miss_rate);
      ("migrated", Json.Num (float_of_int o.Balancer.Cluster.o_migrated));
      ("lost", Json.Num (float_of_int o.Balancer.Cluster.o_lost));
      ( "replayed",
        Json.Num (float_of_int (List.length o.Balancer.Cluster.o_replays)) );
      ( "replay_identical",
        Json.Bool
          (List.for_all (fun (_, ok) -> ok) o.Balancer.Cluster.o_replays) );
      ("summary", Scheduler.summary_json s);
    ]

(* ------------------------------------------------------------------ *)
(* 3. Chaos: kill a real backend process under open-loop socket load. *)

let run_chaos ~n ~seed =
  let catalog, _ = Lazy.force classes in
  let classes_drawn = class_sequence ~n ~seed in
  let journals =
    List.init 3 (fun i ->
        Filename.temp_file (Printf.sprintf "taqp_ha_chaos%d" i) ".journal")
  in
  let servers =
    List.map
      (fun j ->
        Server.create ~gate:`Eager ~quota_capacity:(float_of_int n)
          ~journal_path:j ~catalog ~config ~port:0 ())
      journals
  in
  let domains =
    List.map
      (fun s -> Domain.spawn (fun () -> try Ok (Server.run s) with e -> Error e))
      servers
  in
  let backends =
    List.map2
      (fun s j ->
        { Balancer.Proxy.bs_port = Server.port s; bs_journal = Some j })
      servers journals
  in
  let proxy =
    Balancer.Proxy.create ~failover:true ~downtime:kill_downtime ~port:0
      ~backends ()
  in
  let pd =
    Domain.spawn (fun () ->
        try Ok (Balancer.Proxy.run proxy) with e -> Error e)
  in
  let victim = List.hd servers in
  let outcome =
    Load.run
      ~kill:(n / 2, fun () -> Server.shutdown victim)
      ~port:(Balancer.Proxy.port proxy)
      ~process:Arrivals.Poisson ~rate:(1.0 /. 6.0) ~n ~seed ~clients:3
      ~make_line:(fun ~index ~offset ->
        job_line classes_drawn ~index ~arrival:offset
          ~deadline:(offset +. slack_of classes_drawn index))
      ()
  in
  let stats =
    match Domain.join pd with
    | Ok s -> s
    | Error e -> raise e
  in
  List.iter (fun d -> ignore (Domain.join d)) domains;
  List.iter (fun j -> try Sys.remove j with Sys_error _ -> ()) journals;
  let queued_ids =
    List.filter_map
      (fun (s : Load.submission) ->
        match s.Load.disposition with
        | Load.Queued { job_id; _ } -> Some job_id
        | Load.Door_rejected _ -> None)
      outcome.Load.submissions
  in
  let finished_ids =
    List.map
      (fun (d : Sched_journal.done_record) -> d.Sched_journal.d_id)
      outcome.Load.finished
  in
  let refused_ids = List.map (fun (id, _, _) -> id) outcome.Load.refused in
  let terminal_ids = List.sort_uniq compare (finished_ids @ refused_ids) in
  let covered =
    List.for_all (fun id -> List.mem id terminal_ids) queued_ids
  in
  let duplicates =
    List.length (finished_ids @ refused_ids) <> List.length terminal_ids
  in
  let ok =
    stats.Balancer.Proxy.p_deaths = 1 && covered && not duplicates
    && queued_ids <> []
  in
  ( ok,
    Json.Obj
      [
        ("offered", Json.Num (float_of_int n));
        ("queued", Json.Num (float_of_int (List.length queued_ids)));
        ("deaths", Json.Num (float_of_int stats.Balancer.Proxy.p_deaths));
        ("migrated", Json.Num (float_of_int stats.Balancer.Proxy.p_migrated));
        ("replayed", Json.Num (float_of_int stats.Balancer.Proxy.p_replayed));
        ("lost", Json.Num (float_of_int stats.Balancer.Proxy.p_lost));
        ("covered", Json.Bool covered);
        ("duplicates", Json.Bool duplicates);
        ("ok", Json.Bool ok);
      ] )

(* ------------------------------------------------------------------ *)

let write ?(path = "BENCH_ha.json") ?(jobs = 60) () =
  let seed = 777 in
  Fmt.pr "@.=== HA: replicated serving tier under backend loss ===@.";
  let anchor_ok, anchor_json = anchor ~n:24 ~seed in
  Fmt.pr "  anchor: 1-backend cluster == Scheduler.run  %s@."
    (if anchor_ok then "OK" else "FAIL");
  let on = run_ha_cell ~failover:true ~n:jobs ~seed in
  let off = run_ha_cell ~failover:false ~n:jobs ~seed in
  let miss_on = on.outcome.Balancer.Cluster.o_summary.Engine.miss_rate in
  let miss_off = off.outcome.Balancer.Cluster.o_summary.Engine.miss_rate in
  let replay_identical =
    List.for_all
      (fun (_, ok) -> ok)
      (on.outcome.Balancer.Cluster.o_replays
      @ off.outcome.Balancer.Cluster.o_replays)
  in
  let failover_ok = miss_on < miss_off in
  Fmt.pr
    "  kill 1/3 backends at gap %.1fs: miss %.1f%% (failover off) -> %.1f%% \
     (on), %d migrated, replay identical: %b  %s@."
    hottest_gap (100.0 *. miss_off) (100.0 *. miss_on)
    on.outcome.Balancer.Cluster.o_migrated replay_identical
    (if failover_ok && replay_identical then "OK" else "FAIL");
  let chaos_ok, chaos_json = run_chaos ~n:24 ~seed in
  Fmt.pr "  proxy chaos: kill a live backend process mid-load  %s@."
    (if chaos_ok then "OK" else "FAIL");
  let all_ok = anchor_ok && failover_ok && replay_identical && chaos_ok in
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "taqp-bench-ha/1");
        ("seed", Json.Num (float_of_int seed));
        ("jobs", Json.Num (float_of_int jobs));
        ("mean_gap", Json.Num hottest_gap);
        ("downtime", Json.Num kill_downtime);
        ("anchor", anchor_json);
        ("cells", Json.List [ ha_cell_json on; ha_cell_json off ]);
        ("chaos", chaos_json);
        ( "headline",
          Json.Obj
            [
              ("miss_rate_failover_on", Json.Num miss_on);
              ("miss_rate_failover_off", Json.Num miss_off);
              ("anchor_identical", Json.Bool anchor_ok);
              ("replay_identical", Json.Bool replay_identical);
              ("chaos_ok", Json.Bool chaos_ok);
              ("ok", Json.Bool all_ok);
            ] );
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Fmt.pr "@.wrote %s@." path;
  if not all_ok then begin
    Fmt.epr
      "FAIL: the HA headline did not hold (anchor %b, failover %b, replay \
       %b, chaos %b)@."
      anchor_ok failover_ok replay_identical chaos_ok;
    exit 1
  end
