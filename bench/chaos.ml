(* The chaos matrix: fault scenarios x time-control strategies. Each
   cell runs the same workloads under seeded storage-fault injection in
   ERAM's observe mode and records how the time-control guarantees
   survive: overspend probability against the strategy's claimed risk
   bound, confidence-interval coverage, the fraction of runs that ended
   degraded, and fault accounting. Every trial must end in a report —
   full or degraded-partial — never an uncaught exception; the summary
   and BENCH_chaos.json both carry the violation count so CI can gate
   on it. *)

module Config = Taqp_core.Config
module Taqp = Taqp_core.Taqp
module Report = Taqp_core.Report
module Stopping = Taqp_timecontrol.Stopping
module Strategy = Taqp_timecontrol.Strategy
module Paper_setup = Taqp_workload.Paper_setup
module Generator = Taqp_workload.Generator
module Fault_plan = Taqp_fault.Fault_plan
module Confidence = Taqp_stats.Confidence
module Json = Taqp_obs.Json

let spec = { Generator.n_tuples = 2_000; tuple_bytes = 200; block_bytes = 1024 }

let workloads =
  [
    ("selection", Paper_setup.selection ~spec ~seed:3 (), 1.0);
    ("join", Paper_setup.join ~spec ~seed:4 (), 2.0);
  ]

let scenarios = [ "none"; "transient"; "latency"; "torn"; "stall"; "heavy" ]

(* Claimed one-sided overspend-risk bounds for the matrix, taken from
   the no-fault sweeps of Table 5.1 plus headroom for fault-inflated
   stage costs (the injector can blow up exactly the stage the sizing
   already committed to). The chaos CI job asserts the measured
   probability stays under these. *)
let strategies =
  [
    ("one-at-a-time-24", Strategy.one_at_a_time ~d_beta:24.0 (), 0.15);
    ("one-at-a-time-48", Strategy.one_at_a_time ~d_beta:48.0 (), 0.10);
  ]

let observe_config ~strategy =
  {
    Config.default with
    Config.strategy;
    stopping = Stopping.Soft_deadline { grace = 1e9 };
    trace = false;
  }

type cell = {
  trials : int;
  overspends : int;
  mean_overspend : float;  (** among overspending trials *)
  covered : int;  (** trials whose CI contains the exact answer *)
  degraded : int;
  faulted : int;  (** runs ended by an unrecoverable fault *)
  mean_faults : float;
  mean_fault_time : float;
  mean_stages : float;
  uncaught : int;  (** must be 0: hard acceptance criterion *)
}

let run_cell ~plan ~strategy ~fault_seed ~trials (_, wl, quota) =
  let config = observe_config ~strategy in
  let overspends = ref 0
  and ovsp = ref 0.0
  and covered = ref 0
  and degraded = ref 0
  and faulted = ref 0
  and faults = ref 0.0
  and fault_time = ref 0.0
  and stages = ref 0.0
  and uncaught = ref 0 in
  for trial = 1 to trials do
    match
      Taqp.count_within ~config ~seed:trial ~faults:plan
        ~fault_seed:(fault_seed + trial) wl.Paper_setup.catalog ~quota
        wl.Paper_setup.query
    with
    | exception e ->
        incr uncaught;
        Fmt.epr "chaos: UNCAUGHT %s@." (Printexc.to_string e)
    | r ->
        if r.Report.outcome = Report.Overspent then begin
          incr overspends;
          ovsp := !ovsp +. r.Report.overspend
        end;
        let c = r.Report.confidence in
        let exact = float_of_int wl.Paper_setup.exact in
        if
          Float.abs (r.Report.estimate -. exact)
          <= c.Confidence.half_width +. 1e-9
        then incr covered;
        if r.Report.degraded then incr degraded;
        if r.Report.outcome = Report.Faulted then incr faulted;
        faults := !faults +. float_of_int (List.length r.Report.faults);
        fault_time := !fault_time +. r.Report.fault_time;
        stages := !stages +. float_of_int r.Report.stages_completed
  done;
  let fn = float_of_int trials in
  {
    trials;
    overspends = !overspends;
    mean_overspend =
      (if !overspends > 0 then !ovsp /. float_of_int !overspends else 0.0);
    covered = !covered;
    degraded = !degraded;
    faulted = !faulted;
    mean_faults = !faults /. fn;
    mean_fault_time = !fault_time /. fn;
    mean_stages = !stages /. fn;
    uncaught = !uncaught;
  }

let cell_json ~query ~risk_bound (c : cell) =
  let frac n = float_of_int n /. float_of_int c.trials in
  Json.Obj
    [
      ("query", Json.Str query);
      ("trials", Json.Num (float_of_int c.trials));
      ("overspend_probability", Json.Num (frac c.overspends));
      ("risk_bound", Json.Num risk_bound);
      ("mean_overspend", Json.Num c.mean_overspend);
      ("ci_coverage", Json.Num (frac c.covered));
      ("degraded_fraction", Json.Num (frac c.degraded));
      ("faulted_fraction", Json.Num (frac c.faulted));
      ("mean_faults", Json.Num c.mean_faults);
      ("mean_fault_time", Json.Num c.mean_fault_time);
      ("mean_stages", Json.Num c.mean_stages);
      ("uncaught_exceptions", Json.Num (float_of_int c.uncaught));
    ]

let write ?(path = "BENCH_chaos.json") ?(fault_seed = 42) ?(trials = 60) () =
  Fmt.pr "@.=== Chaos matrix (fault scenarios x strategies) ===@.";
  Fmt.pr
    "%d trials/cell, fault-seed base %d; observe mode (overspend measured, \
     not aborted)@."
    trials fault_seed;
  let violations = ref 0 in
  let uncaught_total = ref 0 in
  let scenario_json scenario =
    let plan = Option.get (Fault_plan.preset scenario) in
    let strategy_json (sname, strategy, risk_bound) =
      let cells =
        List.map
          (fun ((qname, _, _) as wl) ->
            let c = run_cell ~plan ~strategy ~fault_seed ~trials wl in
            let p =
              float_of_int c.overspends /. float_of_int c.trials
            in
            if p > risk_bound then incr violations;
            uncaught_total := !uncaught_total + c.uncaught;
            Fmt.pr
              "  %-10s %-18s %-10s risk %5.1f%% (bound %4.1f%%)  coverage \
               %5.1f%%  degraded %5.1f%%  faults/run %5.2f@."
              scenario sname qname (100.0 *. p) (100.0 *. risk_bound)
              (100.0 *. float_of_int c.covered /. float_of_int c.trials)
              (100.0 *. float_of_int c.degraded /. float_of_int c.trials)
              c.mean_faults;
            cell_json ~query:qname ~risk_bound c)
          workloads
      in
      Json.Obj
        [
          ("strategy", Json.Str sname);
          ("risk_bound", Json.Num risk_bound);
          ("cells", Json.List cells);
        ]
    in
    Json.Obj
      [
        ("scenario", Json.Str scenario);
        ("strategies", Json.List (List.map strategy_json strategies));
      ]
  in
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "taqp-bench-chaos/1");
        ("fault_seed", Json.Num (float_of_int fault_seed));
        ("trials_per_cell", Json.Num (float_of_int trials));
        ("scenarios", Json.List (List.map scenario_json scenarios));
        ("risk_bound_violations", Json.Num (float_of_int !violations));
        ("uncaught_exceptions", Json.Num (float_of_int !uncaught_total));
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_string oc "\n";
  close_out oc;
  Fmt.pr "wrote %s (%d scenarios x %d strategies x %d queries)@." path
    (List.length scenarios) (List.length strategies) (List.length workloads);
  if !uncaught_total > 0 then
    Fmt.epr "chaos: %d trials raised uncaught exceptions@." !uncaught_total;
  if !violations > 0 then
    Fmt.epr "chaos: %d cells exceeded their claimed risk bound@." !violations
