(* Crash-recovery benchmark: BENCH_recover.json.

   Three measurements over the taqp_recover stage journal and the
   scheduler's job-level journal:

   - checkpoint overhead: the fraction of a solo journaled run's
     virtual elapsed time spent on journal writes (charged through
     [Device.journal_write] at [Cost_params.journal_byte_write]);

   - recovery latency: wall-clock seconds to load the journal and
     rebuild a live executor handle from its newest checkpoint,
     including a boundary bit-identity check — a run killed at a stage
     boundary and resumed (with continuation journaling, so it keeps
     paying the same per-boundary charge) must reproduce the
     uninterrupted journaled run's report exactly;

   - the headline: with a crash injected at the hottest arrival rate
     of the --sched sweep, a recovery-enabled serve must miss strictly
     fewer admitted deadlines than a recovery-disabled one that can
     only restart the whole batch after the downtime. The assertion is
     enforced here (nonzero exit), not just recorded, and CI gates on
     the JSON. *)

module Taqp = Taqp_core.Taqp
module Config = Taqp_core.Config
module Report = Taqp_core.Report
module Aggregate = Taqp_core.Aggregate
module Executor = Taqp_core.Executor
module Clock = Taqp_storage.Clock
module Device = Taqp_storage.Device
module Cost_params = Taqp_storage.Cost_params
module Paper_setup = Taqp_workload.Paper_setup
module Generator = Taqp_workload.Generator
module Prng = Taqp_rng.Prng
module Json = Taqp_obs.Json
module Metrics = Taqp_obs.Metrics
module Fault_plan = Taqp_fault.Fault_plan
module Injector = Taqp_fault.Injector
module Scheduler = Taqp_sched.Scheduler
module Sched_journal = Taqp_sched.Sched_journal
module Journal = Taqp_recover.Journal
module Query_journal = Taqp_recover.Query_journal
module Checkpoint = Taqp_recover.Checkpoint

let spec = { Generator.n_tuples = 2_000; tuple_bytes = 200; block_bytes = 1024 }
let config = { Config.default with Config.trace = false }

let fingerprint (r : Report.t) =
  Fmt.str "%.17g|%.17g|%.17g|%.17g|%d|%b" r.Report.estimate r.Report.variance
    r.Report.confidence.Taqp_stats.Confidence.half_width r.Report.elapsed
    r.Report.stages_completed r.Report.degraded

let temp_journal tag =
  Filename.temp_file ("taqp_bench_" ^ tag) ".jrn"

(* ------------------------------------------------------------------ *)
(* Solo query: journaled loop, abandonable after [stop_after] stages.  *)

let journaled_loop ?metrics ?(stop_after = max_int) ~path ~wl ~quota ~seed ()
    =
  let params = Cost_params.default in
  let rng = Prng.create seed in
  let clock = Clock.create_virtual () in
  let device =
    Device.create ~params ~jitter_rng:(Prng.split rng) ?metrics clock
  in
  let catalog = wl.Paper_setup.catalog and expr = wl.Paper_setup.query in
  let h =
    Executor.start ~config ~aggregate:Aggregate.Count ~device ~catalog ~rng
      ~quota expr
  in
  let journal =
    Query_journal.create ~path ~device
      {
        Checkpoint.m_query = expr;
        m_aggregate = Aggregate.Count;
        m_config = config;
        m_quota = quota;
        m_seed = seed;
        m_params = params;
        m_fault_plan = Fault_plan.none;
        m_fault_seed = seed;
      }
  in
  Query_journal.checkpoint journal h;
  let rec loop n =
    if n >= stop_after then `Abandoned
    else
      match Executor.step h with
      | `Continue ->
          Query_journal.checkpoint journal h;
          loop (n + 1)
      | `Done r -> `Done r
  in
  let out = loop 0 in
  Query_journal.close journal;
  out

let resume_loop ?continue_to ~catalog loaded =
  match Query_journal.resume_last ~catalog loaded with
  | Error m -> failwith m
  | Ok (device, h) ->
      let continuation =
        Option.map
          (fun path ->
            Query_journal.create ~path ~device loaded.Query_journal.l_meta)
          continue_to
      in
      let rec loop () =
        match Executor.step h with
        | `Continue ->
            Option.iter (fun j -> Query_journal.checkpoint j h) continuation;
            loop ()
        | `Done r -> r
      in
      let r = loop () in
      Option.iter Query_journal.close continuation;
      r

let solo_cell () =
  let wl = Paper_setup.join ~spec ~seed:302 () in
  let quota = 3.0 and seed = 11 in
  let plain =
    Taqp.count_within ~config ~seed wl.Paper_setup.catalog ~quota
      wl.Paper_setup.query
  in
  let registry = Metrics.create () in
  let path = temp_journal "solo" in
  let journaled =
    match
      journaled_loop ~metrics:registry ~path ~wl ~quota ~seed ()
    with
    | `Done r -> r
    | `Abandoned -> assert false
  in
  let checkpoints =
    Metrics.Counter.value (Metrics.counter registry "recover.checkpoints")
  in
  let bytes =
    Metrics.Counter.value
      (Metrics.counter registry "recover.checkpoint_bytes")
  in
  let journal_cost =
    float_of_int bytes *. Cost_params.default.Cost_params.journal_byte_write
  in
  let overhead_pct = 100.0 *. journal_cost /. plain.Report.elapsed in
  (* Kill the run at a stage boundary, resume, and require the exact
     uninterrupted report back. *)
  let crash_path = temp_journal "crash" in
  (match journaled_loop ~path:crash_path ~wl ~quota ~seed ~stop_after:1 () with
  | `Abandoned -> ()
  | `Done _ -> failwith "bench --recover: run finished before the kill point");
  let t0 = Unix.gettimeofday () in
  let loaded =
    match Query_journal.load crash_path with
    | Ok l -> l
    | Error m -> failwith m
  in
  let cont_path = temp_journal "cont" in
  let resumed =
    resume_loop ~continue_to:cont_path ~catalog:wl.Paper_setup.catalog loaded
  in
  let latency = Unix.gettimeofday () -. t0 in
  let identical = fingerprint resumed = fingerprint journaled in
  List.iter Sys.remove [ path; crash_path; cont_path ];
  ( Json.Obj
      [
        ("workload", Json.Str "join");
        ("quota", Json.Num quota);
        ("checkpoints", Json.Num (float_of_int checkpoints));
        ("checkpoint_bytes", Json.Num (float_of_int bytes));
        ("checkpoint_overhead_pct", Json.Num overhead_pct);
        ("recovery_latency_s", Json.Num latency);
        ("boundary_bit_identical", Json.Bool identical);
        ("journal_torn", Json.Bool (loaded.Query_journal.l_torn <> None));
      ],
    identical,
    overhead_pct,
    latency )

(* ------------------------------------------------------------------ *)
(* Scheduler: crash at the hottest --sched arrival rate.               *)

let sched_cell () =
  let mean_gap = 2.0 and n = 40 and downtime = 2.0 in
  let jobs = List.map snd (Scheduling.make_jobs ~n ~mean_gap ~seed:777 ()) in
  (* A clean journaled run first, to place the crash mid-makespan. *)
  let base_path = temp_journal "sched_base" in
  let bw = Journal.create base_path in
  let base = Scheduler.run ~journal:bw jobs in
  Journal.close bw;
  let crash_target = 0.5 *. base.Scheduler.summary.Scheduler.makespan in
  (* The crashed run: a deterministic kill on the shared device. *)
  let crash_path = temp_journal "sched_crash" in
  let cw = Journal.create crash_path in
  let faults =
    Injector.create ~seed:9 (Fault_plan.make [ Fault_plan.crash_at crash_target ])
  in
  (match Scheduler.run ~journal:cw ~faults jobs with
  | _ -> failwith "bench --recover: the crash fault never fired"
  | exception Injector.Crashed _ -> ());
  Journal.close cw;
  let { Sched_journal.records; torn } =
    match Sched_journal.load crash_path with
    | Ok l -> l
    | Error m -> failwith m
  in
  let crash_time =
    List.fold_left (fun a r -> Float.max a (Sched_journal.now_of r)) 0.0 records
  in
  (* Recovery-enabled: journaled completions kept, the rest re-run. *)
  let recovery = Scheduler.recover ~downtime ~records jobs in
  let recovered_missed = recovery.Scheduler.r_summary.Scheduler.missed in
  (* Recovery-disabled: all the operator can do is restart the whole
     batch once the outage ends — pre-crash completions are lost and
     every deadline the outage overran expires at dispatch. *)
  let norec = Scheduler.run ~start_at:(crash_time +. downtime) jobs in
  let no_recovery_missed = norec.Scheduler.summary.Scheduler.missed in
  let miss_rate m = float_of_int m /. float_of_int n in
  List.iter Sys.remove [ base_path; crash_path ];
  ( Json.Obj
      [
        ("mean_gap", Json.Num mean_gap);
        ("jobs", Json.Num (float_of_int n));
        ("crash_time", Json.Num crash_time);
        ("downtime", Json.Num downtime);
        ("baseline_missed", Json.Num (float_of_int base.Scheduler.summary.Scheduler.missed));
        ("recovered_missed", Json.Num (float_of_int recovered_missed));
        ("no_recovery_missed", Json.Num (float_of_int no_recovery_missed));
        ("recovered_miss_rate", Json.Num (miss_rate recovered_missed));
        ("no_recovery_miss_rate", Json.Num (miss_rate no_recovery_missed));
        ( "journaled_done",
          Json.Num (float_of_int (List.length recovery.Scheduler.r_journaled))
        );
        ( "rerun_jobs",
          Json.Num
            (float_of_int
               (List.length
                  recovery.Scheduler.r_run.Scheduler.reports)) );
        ("journal_torn", Json.Bool (torn <> None));
      ],
    recovered_missed,
    no_recovery_missed )

let write ?(path = "BENCH_recover.json") () =
  Fmt.pr "@.=== Crash recovery: journaled checkpoints vs restart ===@.";
  let solo_json, identical, overhead_pct, latency = solo_cell () in
  let sched_json, recovered_missed, no_recovery_missed = sched_cell () in
  let headline_ok = recovered_missed < no_recovery_missed in
  let doc =
    Json.Obj
      [
        ("schema", Json.Str "taqp-bench-recover/1");
        ("solo", solo_json);
        ("sched", sched_json);
        ("headline_ok", Json.Bool headline_ok);
      ]
  in
  let oc = open_out path in
  output_string oc (Json.to_string doc);
  output_char oc '\n';
  close_out oc;
  Fmt.pr
    "checkpoint overhead %.2f%% of solo elapsed; recovery latency %.1f ms; \
     boundary resume %s@."
    overhead_pct (1000.0 *. latency)
    (if identical then "bit-identical" else "MISMATCH");
  Fmt.pr
    "crash at hottest sched rate: %d missed with recovery vs %d without — \
     %s@."
    recovered_missed no_recovery_missed
    (if headline_ok then "headline holds" else "HEADLINE VIOLATED");
  Fmt.pr "wrote %s@." path;
  if not (identical && headline_ok) then exit 1
